//! Scenario sweeps: declarative experiment grids and a parallel executor.
//!
//! The paper's evaluation (§V, Figs. 10–13) is a grid of scenarios — eight
//! protocol deployments × {single-hop, multi-hop} × loss/adversary settings
//! × seeds. A [`SweepSpec`] describes such a grid declaratively and
//! [`SweepSpec::expand`] turns it into concrete labelled [`Scenario`]s (one
//! [`TestbedConfig`] each, in a fixed deterministic order). Independent
//! scenarios then fan out across OS threads with [`run_scenarios`] /
//! [`parallel_map`] — a work-stealing executor on std threads only — while
//! each simulation stays single-threaded and seed-deterministic, so a
//! parallel sweep produces *byte-identical* reports to a serial one (the
//! `tests/sweep.rs` battery enforces this).
//!
//! Thread count resolution: explicit argument > `WBFT_SWEEP_THREADS` env
//! var > `std::thread::available_parallelism()`.

use crate::byzantine::ByzantineMode;
use crate::protocol::Protocol;
use crate::service::ServiceConfig;
use crate::testbed::{run, ChurnPlan, CrashPlan, RunReport, TestbedConfig};
use wbft_membership::MembershipOp;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wbft_crypto::CryptoSuite;
use wbft_wireless::{LossModel, SimDuration};

/// A cartesian grid of testbed experiments.
///
/// Every axis is a list; [`SweepSpec::expand`] emits one scenario per
/// element of the cross product, ordered with `protocols` as the outermost
/// axis and `seeds` as the innermost. Scalar settings (`epochs`,
/// `batch_size`, …) apply to every scenario.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Sweep name; reports land in `target/reports/<name>/`.
    pub name: String,
    /// Protocol deployments to run.
    pub protocols: Vec<Protocol>,
    /// Topologies: `None` = single-hop, `Some(m)` = `m` clusters (multi-hop).
    pub topologies: Vec<Option<usize>>,
    /// Crypto suites.
    pub suites: Vec<CryptoSuite>,
    /// Frame-loss models.
    pub losses: Vec<LossModel>,
    /// Byzantine placements; the empty placement is an all-honest run.
    pub placements: Vec<Vec<(usize, ByzantineMode)>>,
    /// Service loads: `None` = the classic fixed-epoch pre-seeded run,
    /// `Some` = a live-submission run under that open-loop client-arrival
    /// schedule (latency percentiles and backpressure counters land in the
    /// report's `service` member).
    pub services: Vec<Option<ServiceConfig>>,
    /// Pipeline depths `W` (epochs whose dissemination may be in flight at
    /// once). `1` is the strictly sequential engine; depths `> 1` append a
    /// `.w{d}` label segment, so depth-1 labels keep their exact
    /// pre-pipelining form. Single-hop only.
    pub pipeline_depths: Vec<u64>,
    /// Crash/churn schedules: `None` = no churn (the classic run), `Some` =
    /// the listed nodes are killed and restarted at the scheduled times
    /// (journal recovery + anti-entropy catch-up). Churn points append a
    /// `.crash…` label segment, so churn-free labels keep their exact
    /// pre-churn form. Single-hop, non-service only.
    pub crashes: Vec<Option<CrashPlan>>,
    /// Dynamic-membership schedules: `None` = static committee, `Some` =
    /// the plan's join/leave ops ride the ordered transaction path and the
    /// committee reconfigures mid-run (threshold keys reshared before
    /// activation). Churn points append a `.churn…` label segment, so
    /// static labels keep their exact pre-membership form. Single-hop,
    /// honest, sequential, HoneyBadger-family only.
    pub churns: Vec<Option<ChurnPlan>>,
    /// Simulation seeds.
    pub seeds: Vec<u64>,
    /// Epochs per run.
    pub epochs: u64,
    /// Transactions per proposal batch.
    pub batch_size: usize,
    /// Nodes per hop / per cluster.
    pub n: usize,
    /// Simulated-time budget per run.
    pub deadline: SimDuration,
}

impl SweepSpec {
    /// A one-axis default: single-hop, light suite, lossless, honest,
    /// seed 7, 1 epoch × 8-tx batches of 4 nodes. Callers override axes.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            protocols: vec![Protocol::Beat],
            topologies: vec![None],
            suites: vec![CryptoSuite::light()],
            losses: vec![LossModel::None],
            placements: vec![Vec::new()],
            services: vec![None],
            pipeline_depths: vec![1],
            crashes: vec![None],
            churns: vec![None],
            seeds: vec![7],
            epochs: 1,
            batch_size: 8,
            n: 4,
            deadline: SimDuration::from_secs(14_400),
        }
    }

    /// The paper's Fig. 13 grid: all eight deployments on one topology.
    pub fn fig13(name: impl Into<String>, multihop: bool, seed: u64) -> Self {
        SweepSpec {
            protocols: Protocol::ALL.to_vec(),
            topologies: vec![multihop.then_some(4)],
            seeds: vec![seed],
            // Multi-hop batch kept smaller: the *unbatched* baselines
            // collapse the shared channel at larger proposals (the paper's
            // congestion argument, but the baseline rows must finish).
            epochs: if multihop { 1 } else { 2 },
            batch_size: if multihop { 16 } else { 24 },
            ..SweepSpec::new(name)
        }
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.protocols.len()
            * self.topologies.len()
            * self.suites.len()
            * self.losses.len()
            * self.placements.len()
            * self.services.len()
            * self.pipeline_depths.len()
            * self.crashes.len()
            * self.churns.len()
            * self.seeds.len()
    }

    /// `true` when some axis is empty and the grid expands to nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into labelled scenarios, in deterministic order.
    ///
    /// Labels are unique, filesystem-safe and self-describing, e.g.
    /// `beat.mh4.secp160r1+bn158.loss-none.honest.seed7`.
    pub fn expand(&self) -> Vec<Scenario> {
        // Service runs are single-hop only (clustered service is an open
        // follow-on); fail loudly rather than at run() inside a worker.
        assert!(
            self.services.iter().all(Option::is_none)
                || self.topologies.iter().all(Option::is_none),
            "sweep \"{}\" combines a service load with a multi-hop topology — \
             service runs are single-hop only",
            self.name
        );
        assert!(
            self.pipeline_depths.iter().all(|&d| d == 1)
                || self.topologies.iter().all(Option::is_none),
            "sweep \"{}\" combines a pipeline depth > 1 with a multi-hop topology — \
             pipelined epochs are single-hop only",
            self.name
        );
        assert!(
            self.crashes.iter().all(Option::is_none)
                || (self.topologies.iter().all(Option::is_none)
                    && self.services.iter().all(Option::is_none)),
            "sweep \"{}\" combines a crash plan with a multi-hop topology or a \
             service load — crash/churn runs are single-hop, non-service only",
            self.name
        );
        assert!(
            self.churns.iter().all(Option::is_none)
                || (self.topologies.iter().all(Option::is_none)
                    && self.services.iter().all(Option::is_none)
                    && self.crashes.iter().all(Option::is_none)
                    && self.pipeline_depths.iter().all(|&d| d == 1)
                    && self.placements.iter().all(Vec::is_empty)),
            "sweep \"{}\" combines a membership churn plan with a multi-hop topology, \
             service load, crash plan, pipeline depth > 1 or Byzantine placement — \
             membership churn runs are single-hop, honest, sequential only",
            self.name
        );
        // Reject dishonest axis values before any worker starts: a loss
        // model that can swallow messages forever or an adversary without
        // a finite delay bound breaks the eventual-delivery assumption
        // every liveness claim rests on.
        for (li, loss) in self.losses.iter().enumerate() {
            loss.validate().unwrap_or_else(|e| {
                panic!("sweep \"{}\" loss axis value #{li} is invalid: {e}", self.name)
            });
        }
        if let Some(&protocol) = self.protocols.first() {
            TestbedConfig::single_hop(protocol).adversary.validate().unwrap_or_else(|e| {
                panic!("sweep \"{}\" adversary config is invalid: {e}", self.name)
            });
        }
        let mut out = Vec::with_capacity(self.len());
        for &protocol in &self.protocols {
            for &topology in &self.topologies {
                for &suite in &self.suites {
                    for (li, loss) in self.losses.iter().enumerate() {
                        for placement in &self.placements {
                            for service in &self.services {
                                for &depth in &self.pipeline_depths {
                                    for crash in &self.crashes {
                                        for churn in &self.churns {
                                            for &seed in &self.seeds {
                                                let mut cfg =
                                                    TestbedConfig::single_hop(protocol);
                                                cfg.n = self.n;
                                                cfg.clusters = topology;
                                                cfg.suite = suite;
                                                cfg.loss = loss.clone();
                                                cfg.byzantine = placement.clone();
                                                cfg.service = service.clone();
                                                cfg.pipeline_depth = depth;
                                                cfg.crash = crash.clone();
                                                cfg.churn = churn.clone();
                                                cfg.seed = seed;
                                                cfg.epochs = self.epochs;
                                                cfg.workload.batch_size = self.batch_size;
                                                cfg.deadline = self.deadline;
                                                // Sequential labels stay
                                                // exactly as before; the
                                                // depth, service, crash and
                                                // churn segments appear only
                                                // on the points that use
                                                // those axes.
                                                let label = format!(
                                                    "{}.{}.{}.{}.{}{}.seed{}{}{}{}",
                                                    protocol.slug(),
                                                    topology.map_or("sh".into(), |m| {
                                                        format!("mh{m}")
                                                    }),
                                                    suite_label(&suite),
                                                    loss_label(loss, li),
                                                    placement_label(placement),
                                                    if depth == 1 {
                                                        String::new()
                                                    } else {
                                                        format!(".w{depth}")
                                                    },
                                                    seed,
                                                    service
                                                        .as_ref()
                                                        .map_or(String::new(), service_label),
                                                    crash
                                                        .as_ref()
                                                        .map_or(String::new(), crash_label),
                                                    churn
                                                        .as_ref()
                                                        .map_or(String::new(), churn_label),
                                                );
                                                out.push(Scenario { label, cfg });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Hard check, not a debug_assert: duplicate axis values (e.g.
        // `--seeds 7,7`) would otherwise silently overwrite each other's
        // report files in release builds.
        let unique: std::collections::BTreeSet<_> =
            out.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            unique.len(),
            out.len(),
            "sweep \"{}\" expands to duplicate scenario labels — remove repeated axis values",
            self.name
        );
        out
    }
}

fn suite_label(suite: &CryptoSuite) -> String {
    format!("{}+{}", suite.ecdsa.name(), suite.threshold.name().to_lowercase())
}

fn loss_label(loss: &LossModel, index: usize) -> String {
    match loss {
        LossModel::None => "loss-none".into(),
        LossModel::Uniform { p } => format!("loss-u{p}"),
        LossModel::PerReceiver { .. } => format!("loss-pr{index}"),
    }
}

fn service_label(svc: &ServiceConfig) -> String {
    format!(
        ".svc-ia{}x{}c{}",
        svc.arrivals.interval_us / 1_000,
        svc.arrivals.per_node,
        svc.mempool_capacity,
    )
}

fn crash_label(plan: &CrashPlan) -> String {
    let events = plan
        .crashes
        .iter()
        .map(|e| format!("{}@{}-{}", e.node, e.at_us, e.restart_us))
        .collect::<Vec<_>>()
        .join("+");
    format!(".crash{events}")
}

fn churn_label(plan: &ChurnPlan) -> String {
    let ops = plan
        .ops
        .iter()
        .map(|op| match op {
            MembershipOp::Join(n) => format!("j{n}"),
            MembershipOp::Leave(n) => format!("l{n}"),
        })
        .collect::<Vec<_>>()
        .join("+");
    format!(".churn-{ops}@e{}", plan.from_epoch)
}

fn placement_label(placement: &[(usize, ByzantineMode)]) -> String {
    if placement.is_empty() {
        return "honest".into();
    }
    placement
        .iter()
        .map(|(node, mode)| format!("byz-{}@{node}", mode.slug()))
        .collect::<Vec<_>>()
        .join("+")
}

/// One expanded grid point: a label and the full experiment config.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique, filesystem-safe identifier within the sweep.
    pub label: String,
    /// The experiment.
    pub cfg: TestbedConfig,
}

/// Outcome of one scenario.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Its measured report.
    pub report: RunReport,
}

/// Resolves the sweep's worker-thread count from an explicit argument, an
/// injected environment lookup, and the machine's available parallelism —
/// in that precedence order. Zero or unparsable values at any level fall
/// through to the next.
///
/// The lookup is injected (rather than read from `std::env` here) so tests
/// can exercise every branch without mutating process-global environment
/// state, which is racy under the parallel test harness.
pub fn resolve_threads(
    explicit: Option<usize>,
    env: impl Fn(&str) -> Option<String>,
) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Some(v) = env("WBFT_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves the sweep's worker-thread count: `WBFT_SWEEP_THREADS` if set
/// and positive, otherwise the machine's available parallelism.
pub fn sweep_threads() -> usize {
    resolve_threads(None, |key| std::env::var(key).ok())
}

/// Work-stealing parallel map: applies `f` to every item, fanning work
/// across `threads` OS threads, and returns results in item order.
///
/// Workers pull the next unclaimed index from a shared atomic counter, so
/// long and short jobs mix without static partitioning. With `threads <= 1`
/// (or one item) this degrades to a plain serial loop. The output is
/// independent of scheduling: slot `i` always holds `f(i, &items[i])`.
///
/// A panic inside `f` propagates to the caller once all workers stop.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

/// Runs pre-expanded scenarios on `threads` workers (see [`parallel_map`]).
pub fn run_scenarios(scenarios: &[Scenario], threads: usize) -> Vec<SweepRun> {
    parallel_map(scenarios, threads, |_, s| SweepRun {
        scenario: s.clone(),
        report: run(&s.cfg),
    })
}

/// Expands and runs a full sweep.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<SweepRun> {
    run_scenarios(&spec.expand(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_covers_the_cross_product() {
        let mut spec = SweepSpec::new("unit");
        spec.protocols = vec![Protocol::Beat, Protocol::HoneyBadgerSc];
        spec.topologies = vec![None, Some(4)];
        spec.losses = vec![LossModel::None, LossModel::Uniform { p: 0.1 }];
        spec.placements = vec![Vec::new(), vec![(1, ByzantineMode::Silent)]];
        spec.seeds = vec![1, 2, 3];
        assert_eq!(spec.len(), 2 * 2 * 2 * 2 * 3);
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), spec.len());
        let labels: std::collections::HashSet<_> =
            scenarios.iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels.len(), scenarios.len(), "labels must be unique");
        // Innermost axis varies fastest.
        assert!(scenarios[0].label.ends_with("seed1"));
        assert!(scenarios[1].label.ends_with("seed2"));
        // Scenario configs carry the axis values.
        assert!(scenarios.iter().any(|s| s.cfg.clusters == Some(4)));
        assert!(scenarios.iter().any(|s| !s.cfg.byzantine.is_empty()));
    }

    #[test]
    fn pipeline_depth_axis_expands_and_tags_labels() {
        let mut spec = SweepSpec::new("depths");
        spec.pipeline_depths = vec![1, 2, 4];
        spec.seeds = vec![7, 8];
        assert_eq!(spec.len(), 3 * 2);
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), 6);
        // Depth 1 keeps the exact pre-pipelining label shape.
        assert_eq!(scenarios[0].label, "beat.sh.secp160r1+bn158.loss-none.honest.seed7");
        assert_eq!(scenarios[0].cfg.pipeline_depth, 1);
        // Deeper points get a `.w{d}` segment and carry the depth.
        assert_eq!(scenarios[2].label, "beat.sh.secp160r1+bn158.loss-none.honest.w2.seed7");
        assert_eq!(scenarios[2].cfg.pipeline_depth, 2);
        assert!(scenarios[4].label.contains(".w4."));
    }

    #[test]
    fn crash_axis_expands_and_tags_labels() {
        use crate::testbed::{CrashEvent, CrashPlan};
        let mut spec = SweepSpec::new("churn");
        spec.crashes = vec![
            None,
            Some(CrashPlan {
                crashes: vec![CrashEvent { node: 2, at_us: 5_000_000, restart_us: 30_000_000 }],
            }),
        ];
        assert_eq!(spec.len(), 2);
        let scenarios = spec.expand();
        // The churn-free point keeps the exact pre-churn label shape.
        assert_eq!(scenarios[0].label, "beat.sh.secp160r1+bn158.loss-none.honest.seed7");
        assert!(scenarios[0].cfg.crash.is_none());
        assert_eq!(
            scenarios[1].label,
            "beat.sh.secp160r1+bn158.loss-none.honest.seed7.crash2@5000000-30000000"
        );
        assert!(scenarios[1].cfg.crash.is_some());
    }

    #[test]
    fn churn_axis_expands_and_tags_labels() {
        use crate::testbed::ChurnPlan;
        let mut spec = SweepSpec::new("membership");
        spec.churns = vec![
            None,
            Some(ChurnPlan {
                from_epoch: 1,
                ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
            }),
        ];
        assert_eq!(spec.len(), 2);
        let scenarios = spec.expand();
        // The static point keeps the exact pre-membership label shape.
        assert_eq!(scenarios[0].label, "beat.sh.secp160r1+bn158.loss-none.honest.seed7");
        assert!(scenarios[0].cfg.churn.is_none());
        assert_eq!(
            scenarios[1].label,
            "beat.sh.secp160r1+bn158.loss-none.honest.seed7.churn-j4+l0@e1"
        );
        assert!(scenarios[1].cfg.churn.is_some());
    }

    #[test]
    #[should_panic(expected = "single-hop, honest, sequential only")]
    fn churn_crash_sweeps_are_rejected() {
        use crate::testbed::{ChurnPlan, CrashEvent, CrashPlan};
        let mut spec = SweepSpec::new("bad-membership");
        spec.churns = vec![Some(ChurnPlan {
            from_epoch: 1,
            ops: vec![MembershipOp::Join(4), MembershipOp::Leave(0)],
        })];
        spec.crashes = vec![Some(CrashPlan {
            crashes: vec![CrashEvent { node: 1, at_us: 1, restart_us: 2 }],
        })];
        spec.expand();
    }

    #[test]
    #[should_panic(expected = "single-hop, non-service only")]
    fn crash_multihop_sweeps_are_rejected() {
        use crate::testbed::{CrashEvent, CrashPlan};
        let mut spec = SweepSpec::new("bad-churn");
        spec.topologies = vec![Some(4)];
        spec.crashes = vec![Some(CrashPlan {
            crashes: vec![CrashEvent { node: 0, at_us: 1, restart_us: 2 }],
        })];
        spec.expand();
    }

    #[test]
    #[should_panic(expected = "single-hop only")]
    fn pipelined_multihop_sweeps_are_rejected() {
        let mut spec = SweepSpec::new("bad");
        spec.topologies = vec![Some(4)];
        spec.pipeline_depths = vec![2];
        spec.expand();
    }

    #[test]
    fn fig13_spec_matches_the_paper_grid() {
        let spec = SweepSpec::fig13("fig13a", false, 61);
        assert_eq!(spec.len(), 8);
        assert!(spec.expand().iter().all(|s| s.cfg.clusters.is_none()));
        let multi = SweepSpec::fig13("fig13b", true, 62);
        assert!(multi.expand().iter().all(|s| s.cfg.clusters == Some(4)));
    }

    #[test]
    fn parallel_map_preserves_order_under_contention() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 200] {
            let out = parallel_map(&items, threads, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_on_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, v| *v);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_resolution_precedence() {
        // Injected lookup: no process-global env mutation (set_var under
        // the parallel test harness would race concurrent tests).
        let env3 = |key: &str| (key == "WBFT_SWEEP_THREADS").then(|| "3".to_string());
        let env0 = |key: &str| (key == "WBFT_SWEEP_THREADS").then(|| "0".to_string());
        let garbage = |key: &str| (key == "WBFT_SWEEP_THREADS").then(|| "lots".to_string());
        let unset = |_: &str| None;
        // Explicit argument wins over everything.
        assert_eq!(resolve_threads(Some(5), env3), 5);
        // Zero explicit falls through to the env var.
        assert_eq!(resolve_threads(Some(0), env3), 3);
        // Env var wins when no explicit argument is given.
        assert_eq!(resolve_threads(None, env3), 3);
        // Whitespace is tolerated.
        assert_eq!(resolve_threads(None, |_| Some(" 7 ".into())), 7);
        // Zero, garbage or unset env falls through to available parallelism.
        assert!(resolve_threads(None, env0) >= 1);
        assert!(resolve_threads(None, garbage) >= 1);
        assert!(resolve_threads(None, unset) >= 1);
        // The env-reading wrapper agrees with the injected form.
        assert_eq!(sweep_threads(), resolve_threads(None, |k| std::env::var(k).ok()));
    }
}
