//! The client-facing consensus service layer.
//!
//! The testbed's original API is a benchmark shape — engines take a
//! pre-seeded [`BatchSource`](crate::workload::BatchSource) and a fixed
//! `target_epochs` and terminate into a report. This module redesigns that
//! surface into a *service*: clients submit transactions into a bounded,
//! deterministic [`Mempool`] (digest-dedup, FIFO, explicit
//! [`AdmitOutcome`] backpressure), epochs pull their proposals from the
//! pool, committed blocks flow out through a pull-based stream, and a
//! [`StopCondition`] decides when the engine stops opening new epochs —
//! with [`StopCondition::Epochs`] kept as the compatibility mode that
//! reproduces pre-redesign runs byte-for-byte.
//!
//! A [`ConsensusHandle`] is the client's view of one node's service: it is
//! cheaply cloneable, shared between the engine (which pulls batches and
//! records commits) and whatever front-end feeds it — the in-simulator
//! arrival schedule ([`ArrivalSpec`]), the UDP client gateway
//! (`wbft_consensus::netrun`), or in-process callers.
//!
//! Everything here is deterministic: the mempool is plain FIFO state keyed
//! by ordered digests, arrival schedules are derived from seeds, and
//! latency percentiles are computed over sorted sample vectors — so
//! service scenarios inherit the sweep harness's parallel == serial
//! byte-identity guarantee.

use crate::driver::{Block, Tx};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use wbft_crypto::hash::Digest32;
use wbft_wireless::{SimDuration, SimTime};

/// The digest a transaction is deduplicated by.
pub fn tx_digest(tx: &[u8]) -> Digest32 {
    Digest32::of(tx)
}

/// Digest chain over a node's committed blocks: per-block content digests,
/// used by multi-process runs to cross-check that nodes agree on block
/// *contents*, not merely on transaction counts.
pub fn block_digests(blocks: &[Block]) -> Vec<Digest32> {
    blocks
        .iter()
        .map(|b| {
            let epoch = b.epoch.to_le_bytes();
            let mut parts: Vec<&[u8]> = Vec::with_capacity(b.txs.len() + 1);
            parts.push(&epoch);
            for tx in &b.txs {
                parts.push(tx);
            }
            Digest32::of_parts("wbft/service/block", &parts)
        })
        .collect()
}

// ------------------------------------------------------------------
// Mempool.

/// The explicit backpressure answer to one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Queued; will be proposed in an upcoming epoch.
    Admitted,
    /// Already pending, in flight, or committed — dropped so the chain
    /// carries each transaction at most once.
    Duplicate,
    /// The pool is at capacity — the client should back off and resubmit.
    Full,
}

/// Where a known transaction digest currently lives.
#[derive(Clone, Copy, Debug)]
enum TxPhase {
    /// Queued, waiting to be proposed (the admission sequence rides in the
    /// queue entry). Carries the local submit time.
    Waiting(SimTime),
    /// Pulled into a proposal (the epoch rides in `in_flight`), awaiting
    /// that commit. Carries the admission sequence — a re-queue slots the
    /// transaction back at its admission-order position — and the submit
    /// time.
    Proposed(u64, SimTime),
    /// In a committed block (locally admitted or learned from a peer's
    /// proposal).
    Committed,
}

/// Per-pool counters, snapshot through [`ConsensusHandle::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Submissions received (admitted + rejected).
    pub submitted: u64,
    /// Submissions admitted into the pool.
    pub admitted: u64,
    /// Submissions rejected as duplicates.
    pub rejected_dup: u64,
    /// Submissions rejected because the pool was full.
    pub rejected_full: u64,
    /// In-flight transactions re-queued after their proposing epoch
    /// committed without them (lost ABA, Byzantine proposer, ...).
    pub requeued: u64,
    /// Highest pending + in-flight occupancy observed.
    pub peak_occupancy: u64,
    /// Transactions still pending (queued) right now.
    pub pending: u64,
    /// Transactions currently inside an uncommitted proposal.
    pub in_flight: u64,
    /// Locally admitted transactions that reached a committed block.
    pub committed: u64,
    /// Commit latency of every locally admitted transaction (µs, in commit
    /// order).
    pub latencies_us: Vec<u64>,
}

/// A bounded, deterministic, digest-deduplicating FIFO transaction pool.
///
/// Admission is explicit ([`AdmitOutcome`]); proposals pull from the queue
/// front; transactions pulled into an epoch that commits without them are
/// re-queued *at their admission-order position* (each queue entry carries
/// its admission sequence number), so FIFO fairness survives lost
/// proposals even when several open epochs resolve out of order — a blind
/// requeue-at-front would let a later epoch's casualty jump ahead of an
/// earlier-admitted transaction that was re-queued before it.
///
/// Commit handling is two-phase: [`Mempool::resolve`] (digest bookkeeping:
/// dedup, queue eviction, in-flight re-queue) runs inside the engine
/// *before* it pulls the next epoch's batch — otherwise a transaction just
/// committed through a peer's proposal could ride again from a stale
/// queue — and [`Mempool::finalize`] assigns the commit timestamp to the
/// staged latency samples once the driver observes the block.
#[derive(Debug)]
pub struct Mempool {
    capacity: usize,
    /// Pending transactions with their admission sequence numbers, kept in
    /// ascending sequence order (re-queues insert by sequence).
    queue: VecDeque<(u64, Tx)>,
    in_flight: Vec<(u64, Tx)>,
    phases: BTreeMap<Digest32, TxPhase>,
    /// Next admission sequence number.
    next_seq: u64,
    /// `(epoch, submit time)` of locally admitted transactions whose block
    /// is resolved but not yet timestamped.
    staged: Vec<(u64, SimTime)>,
    /// Epochs `< resolved_below` have all been resolved. The engine resolves
    /// commits in epoch order, but external replays (multi-process
    /// cross-feeds, fuzz harnesses) may not — out-of-order resolutions park
    /// in `resolved_above` until the watermark catches up.
    resolved_below: u64,
    /// Resolved epochs `>= resolved_below` (gapped commits), compacted back
    /// into the watermark as gaps fill.
    resolved_above: std::collections::BTreeSet<u64>,
    stats: ServiceStats,
}

impl Mempool {
    /// An empty pool holding at most `capacity` pending transactions.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            capacity,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            phases: BTreeMap::new(),
            next_seq: 0,
            staged: Vec::new(),
            resolved_below: 0,
            resolved_above: std::collections::BTreeSet::new(),
            stats: ServiceStats::default(),
        }
    }

    /// Offers one transaction at local time `now`.
    pub fn admit(&mut self, tx: Tx, now: SimTime) -> AdmitOutcome {
        self.stats.submitted += 1;
        let d = tx_digest(&tx);
        if self.phases.contains_key(&d) {
            self.stats.rejected_dup += 1;
            return AdmitOutcome::Duplicate;
        }
        if self.queue.len() >= self.capacity {
            self.stats.rejected_full += 1;
            return AdmitOutcome::Full;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.phases.insert(d, TxPhase::Waiting(now));
        self.queue.push_back((seq, tx));
        self.stats.admitted += 1;
        self.note_occupancy();
        AdmitOutcome::Admitted
    }

    /// Pulls up to `max` transactions (FIFO) into the proposal of `epoch`.
    pub fn next_batch(&mut self, epoch: u64, max: usize) -> Vec<Tx> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some((seq, tx)) = self.queue.pop_front() else { break };
            let d = tx_digest(&tx);
            match self.phases.get(&d) {
                Some(TxPhase::Waiting(since)) => {
                    self.phases.insert(d, TxPhase::Proposed(seq, *since));
                    self.in_flight.push((epoch, tx.clone()));
                    out.push(tx);
                }
                // Committed meanwhile through a peer's proposal — drop.
                _ => continue,
            }
        }
        out
    }

    /// Has `epoch`'s block already been resolved?
    fn epoch_resolved(&self, epoch: u64) -> bool {
        epoch < self.resolved_below || self.resolved_above.contains(&epoch)
    }

    /// Digest-level resolution of one committed block: marks every digest
    /// committed (staging latency samples for locally admitted
    /// transactions), evicts now-stale pending duplicates, and re-queues
    /// in-flight transactions whose epoch resolved without them.
    /// Idempotent per epoch — the engine calls it before pulling the next
    /// batch, and [`Mempool::record_commit`] calls it again harmlessly.
    ///
    /// Blocks may arrive out of epoch order (the engine resolves in order,
    /// but multi-process cross-feeds and fuzz replays need not): each epoch
    /// is resolved exactly once whenever its block shows up, and in-flight
    /// transactions of an epoch whose block has *not* been seen stay in
    /// flight — a gap is pending, not lost.
    pub fn resolve(&mut self, block: &Block) {
        if self.epoch_resolved(block.epoch) {
            return;
        }
        if block.epoch == self.resolved_below {
            self.resolved_below += 1;
            while self.resolved_above.remove(&self.resolved_below) {
                self.resolved_below += 1;
            }
        } else {
            self.resolved_above.insert(block.epoch);
        }
        for tx in &block.txs {
            let d = tx_digest(tx);
            match self.phases.get(&d) {
                Some(TxPhase::Waiting(since)) | Some(TxPhase::Proposed(_, since)) => {
                    self.staged.push((block.epoch, *since));
                    self.phases.insert(d, TxPhase::Committed);
                }
                Some(TxPhase::Committed) => {}
                // A peer's transaction we never saw: remember it so a later
                // local submission is deduplicated against the chain.
                None => {
                    self.phases.insert(d, TxPhase::Committed);
                }
            }
        }
        // Evict queued transactions that just committed via a peer.
        let phases = &self.phases;
        self.queue.retain(|(_, tx)| {
            matches!(phases.get(&tx_digest(tx)), Some(TxPhase::Waiting(_)))
        });
        // Resolve in-flight entries of every epoch whose block has been
        // seen: committed ones are done; the rest ride again at their
        // admission-order queue position. Entries of unresolved (gapped)
        // epochs stay in flight — their block is still coming.
        let mut keep = Vec::with_capacity(self.in_flight.len());
        let mut requeue: Vec<(u64, Tx)> = Vec::new();
        let (below, above) = (self.resolved_below, &self.resolved_above);
        for (epoch, tx) in self.in_flight.drain(..) {
            if !(epoch < below || above.contains(&epoch)) {
                keep.push((epoch, tx));
                continue;
            }
            let d = tx_digest(&tx);
            // Anything not still `Proposed` (committed, or unknown) is
            // resolved and dropped.
            if let Some(&TxPhase::Proposed(seq, since)) = self.phases.get(&d) {
                self.phases.insert(d, TxPhase::Waiting(since));
                requeue.push((seq, tx));
            }
        }
        self.in_flight = keep;
        self.stats.requeued += requeue.len() as u64;
        // Deterministic w.r.t. admission order: each casualty slots back in
        // by its admission sequence, so a later epoch resolving first can
        // never push its transactions ahead of earlier-admitted ones.
        requeue.sort_unstable_by_key(|(seq, _)| *seq);
        for (seq, tx) in requeue {
            let at = self.queue.partition_point(|(s, _)| *s < seq);
            self.queue.insert(at, (seq, tx));
        }
        self.note_occupancy();
    }

    /// Stamps commit time `now` onto every staged latency sample of epochs
    /// `<= epoch` (the driver calls this when it observes the block, in
    /// the same event that resolved it — so the stamp is the commit time).
    pub fn finalize(&mut self, epoch: u64, now: SimTime) {
        let mut rest = Vec::new();
        for (e, since) in self.staged.drain(..) {
            if e <= epoch {
                self.stats.latencies_us.push(now.saturating_since(since).as_micros());
                self.stats.committed += 1;
            } else {
                rest.push((e, since));
            }
        }
        self.staged = rest;
    }

    /// One-call commit recording: [`Mempool::resolve`] +
    /// [`Mempool::finalize`].
    pub fn record_commit(&mut self, block: &Block, now: SimTime) {
        self.resolve(block);
        self.finalize(block.epoch, now);
    }

    /// Pending (queued, not yet proposed) transactions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Transactions inside uncommitted proposals.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Counter snapshot (with `pending`/`in_flight` filled in).
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats.clone();
        s.pending = self.queue.len() as u64;
        s.in_flight = self.in_flight.len() as u64;
        s
    }

    fn note_occupancy(&mut self) {
        let occ = (self.queue.len() + self.in_flight.len()) as u64;
        if occ > self.stats.peak_occupancy {
            self.stats.peak_occupancy = occ;
        }
    }
}

// ------------------------------------------------------------------
// The handle.

/// A committed block as seen on the service stream: the epoch plus the
/// content digests (the full transactions stay in [`Block`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSummary {
    /// Epoch number.
    pub epoch: u64,
    /// Digest of every committed transaction, in block order (the count is
    /// `digests.len()`).
    pub digests: Vec<Digest32>,
}

#[derive(Debug)]
struct ServiceCore {
    mempool: Mempool,
    /// Every committed block, in commit order (the stream's backing store).
    blocks: Vec<Block>,
    /// The local pull-consumer's position in `blocks`.
    cursor: usize,
    stop: bool,
}

/// The client-facing handle of one node's consensus service.
///
/// Cheaply cloneable; every clone shares the same state, so the engine
/// (pulling proposals, recording commits) and the submission front-end
/// (arrival timers, UDP gateway, in-process callers) stay consistent. All
/// methods take `&self` — state lives behind an uncontended mutex, which
/// keeps the handle `Send + Sync` for the parallel sweep executor.
#[derive(Clone, Debug)]
pub struct ConsensusHandle {
    core: Arc<Mutex<ServiceCore>>,
}

impl ConsensusHandle {
    /// Locks the core, recovering a poisoned mutex: `ServiceCore` holds
    /// counters and Vecs mutated one field at a time, so state left by a
    /// panicking thread is still well-formed.
    fn locked(&self) -> std::sync::MutexGuard<'_, ServiceCore> {
        self.core.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A fresh service with a mempool of `capacity`.
    pub fn new(capacity: usize) -> Self {
        ConsensusHandle {
            core: Arc::new(Mutex::new(ServiceCore {
                mempool: Mempool::new(capacity),
                blocks: Vec::new(),
                cursor: 0,
                stop: false,
            })),
        }
    }

    /// Submits one transaction; the outcome is the backpressure signal.
    pub fn submit(&self, tx: Tx, now: SimTime) -> AdmitOutcome {
        self.locked().mempool.admit(tx, now)
    }

    /// Engine hook: whether the mempool holds queued (not yet proposed)
    /// transactions — pipelined engines only open epochs beyond the
    /// sequential cadence when there is actual work to disseminate.
    pub fn has_pending(&self) -> bool {
        self.locked().mempool.pending() > 0
    }

    /// Pulls the next committed block off the stream, if one is ready.
    /// Blocks are delivered exactly once per handle family, in epoch order.
    pub fn try_next_block(&self) -> Option<Block> {
        let mut core = self.locked();
        let block = core.blocks.get(core.cursor).cloned()?;
        core.cursor += 1;
        Some(block)
    }

    /// Requests a graceful stop: the engine finishes its in-flight epoch
    /// and opens no further ones.
    pub fn stop(&self) {
        self.locked().stop = true;
    }

    /// `true` once [`ConsensusHandle::stop`] was called.
    pub fn stop_requested(&self) -> bool {
        self.locked().stop
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.locked().mempool.stats()
    }

    /// Submissions received so far (admitted + rejected).
    pub fn submissions(&self) -> u64 {
        self.locked().mempool.stats.submitted
    }

    /// `true` when nothing is pending or in flight — every admitted
    /// transaction has been resolved into a block (or evicted as a peer
    /// commit).
    pub fn drained(&self) -> bool {
        let core = self.locked();
        core.mempool.pending() == 0 && core.mempool.in_flight() == 0
    }

    /// Committed blocks so far.
    pub fn block_count(&self) -> usize {
        self.locked().blocks.len()
    }

    /// Stream summaries of blocks `from..`, for subscribers keeping their
    /// own cursor (e.g. the UDP client gateway).
    pub fn block_summaries(&self, from: usize) -> Vec<BlockSummary> {
        let core = self.locked();
        core.blocks[from.min(core.blocks.len())..]
            .iter()
            .map(|b| BlockSummary {
                epoch: b.epoch,
                digests: b.txs.iter().map(|tx| tx_digest(tx)).collect(),
            })
            .collect()
    }

    /// Engine hook: pulls the proposal batch for `epoch`.
    pub fn next_batch(&self, epoch: u64, max: usize) -> Vec<Tx> {
        self.locked().mempool.next_batch(epoch, max)
    }

    /// Engine hook, called at the commit *before* the next epoch's batch
    /// is pulled: digest-level resolution (dedup, eviction, re-queue)
    /// without a timestamp. See [`Mempool::resolve`].
    pub fn resolve_commit(&self, block: &Block) {
        self.locked().mempool.resolve(block);
    }

    /// Driver hook: records one committed block at local time `now` —
    /// resolves it (idempotent if the engine already did), stamps the
    /// staged latency samples, and appends the block to the stream.
    pub fn record_commit(&self, block: &Block, now: SimTime) {
        let mut core = self.locked();
        core.mempool.resolve(block);
        core.mempool.finalize(block.epoch, now);
        core.blocks.push(block.clone());
    }

    /// Restart hook: seeds a *fresh* service with the committed prefix
    /// recovered from the durable journal, before the node starts. Each
    /// block is resolved in the mempool — so a client resubmitting a
    /// transaction that committed before the crash gets
    /// [`AdmitOutcome::Duplicate`], not a second ride — and appended to the
    /// block stream (subscribers replay the recovered chain). No latency
    /// samples are staged and no commit counters move: the service did not
    /// commit these blocks in this incarnation, it inherited them.
    pub fn recover_chain(&self, blocks: &[Block]) {
        let mut core = self.locked();
        for block in blocks {
            core.mempool.resolve(block);
            core.blocks.push(block.clone());
        }
    }
}

// ------------------------------------------------------------------
// Stop conditions.

/// When an engine stops opening new epochs.
#[derive(Clone, Debug)]
pub enum StopCondition {
    /// Run exactly this many epochs — the pre-redesign benchmark mode;
    /// fixed-epoch runs through this variant are byte-identical to the old
    /// `target_epochs` API.
    Epochs(u64),
    /// Serve the handle until it requests a stop, hard-bounded at
    /// `max_epochs` so a run is finite even if the pool never drains.
    Service {
        /// The service whose stop flag ends the run.
        handle: ConsensusHandle,
        /// Upper bound on epochs regardless of the stop flag.
        max_epochs: u64,
    },
}

impl StopCondition {
    /// May the engine open `epoch`?
    pub fn allows(&self, epoch: u64) -> bool {
        match self {
            StopCondition::Epochs(n) => epoch < *n,
            StopCondition::Service { handle, max_epochs } => {
                epoch < *max_epochs && !handle.stop_requested()
            }
        }
    }

    /// Engine completion: every opened epoch committed and no further
    /// epoch may open.
    pub fn is_done(&self, started: u64, committed: u64) -> bool {
        committed >= started && !self.allows(started)
    }
}

// ------------------------------------------------------------------
// Open-loop client arrivals.

/// A deterministic open-loop client arrival schedule: every node receives
/// `per_node` submissions at a fixed `interval_us` cadence with
/// seed-derived sub-interval jitter, independent of consensus progress —
/// the "serve live traffic" workload axis of service scenarios.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Submissions arriving at each node.
    pub per_node: u64,
    /// Inter-arrival gap in microseconds of simulated time.
    pub interval_us: u64,
    /// Bytes per transaction.
    pub tx_bytes: usize,
    /// Schedule seed (distinct seeds = distinct transactions and jitter).
    pub seed: u64,
}

impl ArrivalSpec {
    /// A small default: 8 arrivals per node, one every 2 simulated
    /// seconds, 32-byte transactions.
    pub fn small() -> Self {
        ArrivalSpec { per_node: 8, interval_us: 2_000_000, tx_bytes: 32, seed: 1 }
    }

    /// The arrival schedule of `node`: `(delay from start, transaction)`
    /// pairs in non-decreasing delay order. Transactions are globally
    /// unique across nodes and indices.
    pub fn schedule(&self, node: usize) -> Vec<(SimDuration, Tx)> {
        (0..self.per_node)
            .map(|i| {
                let tag = Digest32::of_parts(
                    "wbft/service/arrival",
                    &[
                        &self.seed.to_le_bytes(),
                        &(node as u64).to_le_bytes(),
                        &i.to_le_bytes(),
                    ],
                );
                // Deterministic jitter inside the slot keeps nodes out of
                // lockstep while preserving monotonic per-node order.
                let jitter = if self.interval_us > 0 {
                    tag.as_bytes()
                        .get(..8)
                        .and_then(|b| b.try_into().ok())
                        .map(u64::from_le_bytes)
                        .unwrap_or(0)
                        % self.interval_us
                } else {
                    0
                };
                let at = SimDuration::from_micros(i * self.interval_us + jitter);
                let mut tx = Vec::with_capacity(self.tx_bytes);
                while tx.len() < self.tx_bytes {
                    let take = (self.tx_bytes - tx.len()).min(32);
                    tx.extend_from_slice(&tag.as_bytes()[..take]);
                }
                (at, bytes::Bytes::from(tx))
            })
            .collect()
    }
}

/// The service side of a testbed experiment: the arrival load plus the
/// pool and epoch bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Client arrival schedule.
    pub arrivals: ArrivalSpec,
    /// Mempool capacity per node.
    pub mempool_capacity: usize,
    /// Hard epoch bound (the run also ends at the config deadline).
    pub max_epochs: u64,
}

impl ServiceConfig {
    /// Defaults matched to the single-hop LoRa testbed's epoch cadence.
    pub fn small() -> Self {
        ServiceConfig { arrivals: ArrivalSpec::small(), mempool_capacity: 256, max_epochs: 64 }
    }
}

// ------------------------------------------------------------------
// Aggregated reporting.

/// Percentile summary over per-transaction commit latencies.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency in µs (0 when there are no samples).
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest sample.
    pub max_us: u64,
}

impl LatencySummary {
    /// Nearest-rank percentiles over `samples` (sorted internally).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pick = |p: f64| -> u64 {
            let idx = ((p * (sorted.len() - 1) as f64).round()) as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencySummary {
            count: sorted.len() as u64,
            mean_us: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50_us: pick(0.50),
            p90_us: pick(0.90),
            p99_us: pick(0.99),
            max_us: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// The service section of a [`RunReport`](crate::testbed::RunReport):
/// submission/backpressure counters plus commit-latency percentiles,
/// aggregated over the run's (honest) nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Submissions received across nodes.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Duplicate rejections.
    pub rejected_dup: u64,
    /// Capacity rejections (the mempool drop count).
    pub rejected_full: u64,
    /// Re-queued in-flight transactions.
    pub requeued: u64,
    /// Highest per-node occupancy observed.
    pub peak_occupancy: u64,
    /// Transactions still pending or in flight when the run ended.
    pub pending_at_stop: u64,
    /// Locally admitted transactions that reached a committed block.
    pub committed_client_txs: u64,
    /// Commit latency percentiles over all nodes' samples.
    pub latency: LatencySummary,
}

impl ServiceReport {
    /// Aggregates per-node stats into the run-level report.
    pub fn aggregate(stats: &[ServiceStats]) -> Self {
        let mut samples = Vec::new();
        for s in stats {
            samples.extend_from_slice(&s.latencies_us);
        }
        samples.sort_unstable();
        ServiceReport {
            submitted: stats.iter().map(|s| s.submitted).sum(),
            admitted: stats.iter().map(|s| s.admitted).sum(),
            rejected_dup: stats.iter().map(|s| s.rejected_dup).sum(),
            rejected_full: stats.iter().map(|s| s.rejected_full).sum(),
            requeued: stats.iter().map(|s| s.requeued).sum(),
            peak_occupancy: stats.iter().map(|s| s.peak_occupancy).max().unwrap_or(0),
            pending_at_stop: stats.iter().map(|s| s.pending + s.in_flight).sum(),
            committed_client_txs: stats.iter().map(|s| s.committed).sum(),
            latency: LatencySummary::from_samples(&samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn tx(tag: u8) -> Tx {
        Bytes::from(vec![tag; 24])
    }

    #[test]
    fn admit_dedup_and_capacity() {
        let mut m = Mempool::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(m.admit(tx(1), t0), AdmitOutcome::Admitted);
        assert_eq!(m.admit(tx(1), t0), AdmitOutcome::Duplicate);
        assert_eq!(m.admit(tx(2), t0), AdmitOutcome::Admitted);
        assert_eq!(m.admit(tx(3), t0), AdmitOutcome::Full);
        let s = m.stats();
        assert_eq!((s.submitted, s.admitted, s.rejected_dup, s.rejected_full), (4, 2, 1, 1));
        assert_eq!(s.peak_occupancy, 2);
        // A full-rejected transaction may be retried once space frees.
        let batch = m.next_batch(0, 10);
        assert_eq!(batch.len(), 2);
        assert_eq!(m.admit(tx(3), t0), AdmitOutcome::Admitted);
    }

    #[test]
    fn fifo_order_and_requeue_on_lost_proposal() {
        let mut m = Mempool::new(16);
        for tag in 1..=4 {
            m.admit(tx(tag), SimTime::ZERO);
        }
        let batch = m.next_batch(0, 2);
        assert_eq!(batch, vec![tx(1), tx(2)]);
        // Epoch 0 commits with only tx(2) (tx(1)'s instance lost its ABA):
        // tx(1) must ride again at the front, ahead of 3 and 4.
        m.record_commit(&Block { epoch: 0, txs: vec![tx(2)] }, SimTime::from_micros(5));
        assert_eq!(m.stats().requeued, 1);
        let batch = m.next_batch(1, 10);
        assert_eq!(batch, vec![tx(1), tx(3), tx(4)]);
    }

    #[test]
    fn out_of_order_commits_resolve_each_epoch_once() {
        // The bug this guards against: `resolve` used a single watermark and
        // silently ignored any block below it, so an out-of-order replay
        // (epoch 1 before epoch 0) never resolved epoch 0 — its lost
        // transactions stayed in flight forever.
        let mut m = Mempool::new(16);
        for tag in 1..=4 {
            m.admit(tx(tag), SimTime::ZERO);
        }
        assert_eq!(m.next_batch(0, 2), vec![tx(1), tx(2)]);
        assert_eq!(m.next_batch(1, 2), vec![tx(3), tx(4)]);
        // Epoch 1 commits first, without tx(4): tx(4) rides again, but
        // epoch 0's entries must stay in flight — their block is pending.
        m.record_commit(&Block { epoch: 1, txs: vec![tx(3)] }, SimTime::from_micros(5));
        assert_eq!(m.stats().requeued, 1);
        assert_eq!(m.in_flight(), 2, "epoch 0 still unresolved");
        assert_eq!(m.pending(), 1);
        // Epoch 0's block arrives late, without tx(2): it must still be
        // resolved (not ignored as "already past"), re-queuing tx(2).
        m.record_commit(&Block { epoch: 0, txs: vec![tx(1)] }, SimTime::from_micros(9));
        assert_eq!(m.stats().requeued, 2);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.next_batch(2, 10), vec![tx(2), tx(4)]);
        // Idempotent in any order: replaying either block changes nothing.
        m.record_commit(&Block { epoch: 0, txs: vec![tx(1)] }, SimTime::from_micros(11));
        m.record_commit(&Block { epoch: 1, txs: vec![tx(3)] }, SimTime::from_micros(11));
        assert_eq!(m.stats().requeued, 2);
        assert_eq!(m.stats().latencies_us.len(), 2);
    }

    #[test]
    fn gapped_commits_keep_unseen_epochs_in_flight() {
        let mut m = Mempool::new(16);
        for tag in 1..=3 {
            m.admit(tx(tag), SimTime::ZERO);
        }
        assert_eq!(m.next_batch(0, 1), vec![tx(1)]);
        assert_eq!(m.next_batch(1, 1), vec![tx(2)]);
        assert_eq!(m.next_batch(2, 1), vec![tx(3)]);
        m.record_commit(&Block { epoch: 0, txs: vec![tx(1)] }, SimTime::from_micros(1));
        // Epoch 2 commits empty while epoch 1 is still a gap: tx(3) rides
        // again, tx(2) must NOT be requeued — epoch 1's block is pending,
        // and requeueing it would let it commit twice.
        m.record_commit(&Block { epoch: 2, txs: vec![] }, SimTime::from_micros(2));
        assert_eq!(m.stats().requeued, 1);
        assert_eq!(m.in_flight(), 1, "epoch 1's entry stays in flight");
        // The gap fills: epoch 1 commits its transaction normally.
        m.record_commit(&Block { epoch: 1, txs: vec![tx(2)] }, SimTime::from_micros(3));
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.stats().requeued, 1, "committed in-flight tx never requeued");
        assert_eq!(m.next_batch(3, 10), vec![tx(3)]);
        assert_eq!(m.stats().latencies_us.len(), 2);
    }

    #[test]
    fn out_of_order_requeue_keeps_admission_order() {
        // The reorder bug: with several epochs open at once (pipelined
        // runs), a blind requeue-at-front let the casualty of a *later*
        // epoch jump ahead of an earlier-admitted transaction that had
        // already been re-queued — admission-order FIFO silently broke.
        let mut m = Mempool::new(16);
        for tag in 1..=3 {
            m.admit(tx(tag), SimTime::ZERO); // seqs 0, 1, 2
        }
        assert_eq!(m.next_batch(0, 1), vec![tx(1)]);
        assert_eq!(m.next_batch(1, 1), vec![tx(2)]);
        assert_eq!(m.next_batch(2, 1), vec![tx(3)]);
        // Epoch 0 resolves first, without tx(1): it rides again.
        m.record_commit(&Block { epoch: 0, txs: vec![] }, SimTime::from_micros(1));
        // A fresh admission lands behind the requeued tx(1).
        m.admit(tx(4), SimTime::from_micros(2)); // seq 3
        // Epoch 2 resolves next, also empty. Requeue-at-front would put
        // tx(3) (seq 2) ahead of tx(1) (seq 0).
        m.record_commit(&Block { epoch: 2, txs: vec![] }, SimTime::from_micros(3));
        // Epoch 1 resolves last, empty too: tx(2) must slot between them.
        m.record_commit(&Block { epoch: 1, txs: vec![] }, SimTime::from_micros(4));
        assert_eq!(m.stats().requeued, 3);
        assert_eq!(
            m.next_batch(3, 10),
            vec![tx(1), tx(2), tx(3), tx(4)],
            "requeues must restore admission order regardless of resolution order"
        );
    }

    #[test]
    fn peer_commit_evicts_pending_duplicate_and_dedups_later_submissions() {
        let mut m = Mempool::new(16);
        m.admit(tx(7), SimTime::ZERO);
        // A peer's proposal committed the same transaction first.
        m.record_commit(&Block { epoch: 0, txs: vec![tx(7), tx(9)] }, SimTime::from_micros(3));
        assert_eq!(m.pending(), 0);
        // Latency recorded for our admitted copy; the foreign tx(9) is
        // remembered for chain-level dedup but adds no sample.
        assert_eq!(m.stats().latencies_us, vec![3]);
        assert_eq!(m.admit(tx(7), SimTime::ZERO), AdmitOutcome::Duplicate);
        assert_eq!(m.admit(tx(9), SimTime::ZERO), AdmitOutcome::Duplicate);
    }

    #[test]
    fn handle_stream_delivers_blocks_once_in_order() {
        let h = ConsensusHandle::new(8);
        assert!(h.try_next_block().is_none());
        h.record_commit(&Block { epoch: 0, txs: vec![tx(1)] }, SimTime::from_micros(1));
        h.record_commit(&Block { epoch: 1, txs: vec![] }, SimTime::from_micros(2));
        assert_eq!(h.try_next_block().map(|b| b.epoch), Some(0));
        assert_eq!(h.try_next_block().map(|b| b.epoch), Some(1));
        assert!(h.try_next_block().is_none());
        assert_eq!(h.block_count(), 2);
        let summaries = h.block_summaries(1);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].epoch, 1);
    }

    #[test]
    fn recover_chain_dedups_streams_and_stays_latency_silent() {
        let h = ConsensusHandle::new(8);
        h.recover_chain(&[
            Block { epoch: 0, txs: vec![tx(1)] },
            Block { epoch: 1, txs: vec![] },
        ]);
        // Recovered blocks reach the stream (a re-subscribing client
        // replays the chain)...
        assert_eq!(h.block_count(), 2);
        assert_eq!(h.try_next_block().map(|b| b.epoch), Some(0));
        // ...dedup survives the restart...
        assert_eq!(h.submit(tx(1), SimTime::ZERO), AdmitOutcome::Duplicate);
        assert_eq!(h.submit(tx(2), SimTime::ZERO), AdmitOutcome::Admitted);
        // ...but no commit counters or latency samples move: this
        // incarnation inherited the blocks, it did not commit them.
        let s = h.stats();
        assert_eq!(s.committed, 0);
        assert!(s.latencies_us.is_empty());
    }

    #[test]
    fn stop_condition_modes() {
        let fixed = StopCondition::Epochs(2);
        assert!(fixed.allows(0) && fixed.allows(1) && !fixed.allows(2));
        assert!(!fixed.is_done(2, 1));
        assert!(fixed.is_done(2, 2));
        let h = ConsensusHandle::new(8);
        let svc = StopCondition::Service { handle: h.clone(), max_epochs: 3 };
        assert!(svc.allows(0) && svc.allows(2) && !svc.allows(3));
        assert!(!svc.is_done(1, 1), "no stop requested, more epochs allowed");
        h.stop();
        assert!(!svc.allows(0));
        assert!(!svc.is_done(2, 1), "in-flight epoch must still finish");
        assert!(svc.is_done(2, 2));
    }

    #[test]
    fn arrival_schedules_are_deterministic_monotonic_and_distinct() {
        let spec = ArrivalSpec { per_node: 6, interval_us: 1_000, tx_bytes: 32, seed: 9 };
        let a = spec.schedule(0);
        assert_eq!(a, spec.schedule(0));
        assert_ne!(a, spec.schedule(1));
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "arrivals must be ordered");
        let mut digests: Vec<_> = a.iter().map(|(_, tx)| tx_digest(tx)).collect();
        digests.extend(spec.schedule(1).iter().map(|(_, tx)| tx_digest(tx)));
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), 12, "transactions unique across nodes and slots");
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        let empty = LatencySummary::from_samples(&[]);
        assert_eq!((empty.count, empty.max_us), (0, 0));
    }

    #[test]
    fn block_digests_depend_on_content_and_epoch() {
        let a = vec![Block { epoch: 0, txs: vec![tx(1)] }];
        let b = vec![Block { epoch: 0, txs: vec![tx(2)] }];
        let c = vec![Block { epoch: 1, txs: vec![tx(1)] }];
        assert_ne!(block_digests(&a), block_digests(&b));
        assert_ne!(block_digests(&a), block_digests(&c));
        assert_eq!(block_digests(&a), block_digests(&a));
    }
}
