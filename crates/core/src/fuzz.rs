//! Coverage-guided scenario fuzzing for liveness and agreement.
//!
//! The adversary of the paper may schedule deliveries arbitrarily within
//! eventual delivery; the sweeps exercise *stochastic* corners of that
//! power, this module hunts the *adversarial* corners. A [`FuzzCase`] is a
//! complete single-hop scenario (protocol, topology size, Byzantine
//! placement, loss, delivery scheduler) plus an event budget; running one
//! yields a [`FuzzVerdict`]:
//!
//! * **stall** — some honest node failed to finish its epochs within the
//!   event budget (a liveness failure under a bounded-delay schedule);
//! * **divergence** — two honest digest chains disagree on a common prefix
//!   (an agreement violation, the fatal kind);
//! * **ok** — every honest node finished and all chains agree.
//!
//! The campaign ([`campaign`]) mutates a corpus of cases with a seeded RNG,
//! keeps mutants that reach new [coverage](coverage_key), and greedily
//! [minimizes](minimize) every failure into a replayable fixture
//! (`tests/fixtures/fuzz/`). Everything is deterministic: same campaign
//! seed, same cases, same verdicts, byte-identical fixture and outcome
//! encodings.
//!
//! This module also owns the protocol-aware delivery schedulers that
//! [`wbft_wireless::sched`] cannot build (it sits below envelope
//! decoding): [`build_scheduler`] turns any
//! [`SchedPolicy`](wbft_wireless::SchedPolicy) — including
//! [`CoinStarve`](wbft_wireless::SchedPolicy::CoinStarve) — into an
//! installable scheduler.

use crate::byzantine::ByzantineMode;
use crate::protocol::Protocol;
use crate::service::block_digests;
use crate::testbed::{self, TestbedConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use wbft_crypto::hash::Digest32;
use wbft_net::packets::{Body, Envelope};
use wbft_report::{field, Json, JsonError, ToJson};
use wbft_wireless::{
    Delivery, DeliveryScheduler, NodeId, SchedConfig, SchedPolicy, SimDuration, SimTime,
};

// ------------------------------------------------------------------
// Protocol-aware scheduling.

/// Builds the delivery scheduler for any policy: generic policies come
/// straight from the wireless layer, protocol-aware ones are constructed
/// here where envelopes can be decoded.
pub fn build_scheduler(cfg: &SchedConfig) -> Box<dyn DeliveryScheduler> {
    match cfg.build_generic() {
        Some(s) => s,
        None => match cfg.policy {
            SchedPolicy::CoinStarve { pass } => {
                Box::new(CoinStarveScheduler { pass, budget: cfg.budget, seen: BTreeMap::new() })
            }
            _ => unreachable!("build_generic covers every content-agnostic policy"),
        },
    }
}

/// See [`SchedPolicy::CoinStarve`]: per (receiver, session, round), the
/// first `pass` coin-share deliveries flow promptly and every later one is
/// held for the full budget — starving the quorum-completing (`f+1`-th)
/// share that unblocks the common coin.
pub struct CoinStarveScheduler {
    pass: u32,
    budget: SimDuration,
    seen: BTreeMap<(NodeId, u64, u16), u32>,
}

/// `Some((session, round))` when `payload` is a frame carrying common-coin
/// shares. The adversary reads traffic (it cannot forge), so decoding
/// without key lookup is exactly its power.
fn classify_coin(payload: &[u8]) -> Option<(u64, u16)> {
    let (env, _sig_ok) = Envelope::open(payload, |_| None).ok()?;
    match &env.body {
        Body::AbaSc { coin_shares, .. } if !coin_shares.is_empty() => {
            let round = coin_shares.iter().map(|(r, _)| *r).max().unwrap_or(0);
            Some((env.session, round))
        }
        Body::BaseAbaCoin { round, .. } => Some((env.session, *round)),
        _ => {
            let (_, role) = crate::driver::sessions::split(env.session);
            (role == crate::driver::sessions::PI_COIN).then_some((env.session, 0))
        }
    }
}

impl DeliveryScheduler for CoinStarveScheduler {
    fn delay(&mut self, d: &Delivery<'_>) -> SimDuration {
        let Some((session, round)) = classify_coin(d.payload) else {
            return SimDuration::ZERO;
        };
        let passed = self.seen.entry((d.dst, session, round)).or_insert(0);
        *passed += 1;
        if *passed > self.pass { self.budget } else { SimDuration::ZERO }
    }

    fn budget(&self) -> SimDuration {
        self.budget
    }
}

// ------------------------------------------------------------------
// Cases and verdicts.

/// One fuzz scenario: a complete testbed config plus the event budget the
/// liveness check is measured against.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Human-readable case name (fixture file stem).
    pub label: String,
    /// The scenario (single-hop).
    pub cfg: TestbedConfig,
    /// Simulator events after which an unfinished run counts as stalled.
    pub event_budget: u64,
}

/// What one case's run concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzVerdict {
    /// Finished within budget, chains agree.
    Ok,
    /// Some honest node did not finish within the event budget.
    Stall,
    /// Honest digest chains disagree on a common prefix.
    Divergence,
}

impl FuzzVerdict {
    /// Stable name used in fixture files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FuzzVerdict::Ok => "ok",
            FuzzVerdict::Stall => "stall",
            FuzzVerdict::Divergence => "divergence",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(FuzzVerdict::Ok),
            "stall" => Some(FuzzVerdict::Stall),
            "divergence" => Some(FuzzVerdict::Divergence),
            _ => None,
        }
    }
}

/// Everything observed about one case's run (the replayable "report").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// The conclusion.
    pub verdict: FuzzVerdict,
    /// Simulator events processed.
    pub events: u64,
    /// Longest honest chain (blocks).
    pub blocks: u64,
    /// Medium collisions.
    pub collisions: u64,
    /// Digest chain of the first honest node (the agreement reference).
    pub chain: Vec<Digest32>,
}

impl ToJson for FuzzOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("verdict", Json::str(self.verdict.name())),
            ("events", Json::u64(self.events)),
            ("blocks", Json::u64(self.blocks)),
            ("collisions", Json::u64(self.collisions)),
            (
                "chain",
                Json::arr(self.chain.iter().map(|d| Json::str(hex32(d)))),
            ),
        ])
    }
}

/// Runs one case without panicking on protocol failures: disagreement
/// becomes a [`FuzzVerdict::Divergence`], an unfinished run a
/// [`FuzzVerdict::Stall`]. Single-hop only (divergence detection needs the
/// per-node chains the multi-hop tiers don't expose uniformly).
pub fn run_case(case: &FuzzCase) -> FuzzOutcome {
    assert!(case.cfg.clusters.is_none(), "fuzz cases are single-hop");
    testbed::validate(&case.cfg);
    // Crash-plan cases run the journaled, sync-capable build and execute
    // the churn timeline before the completion race; verdicts (including a
    // restarted node that never catches up → stall) are judged the same way.
    let (mut sim, honest) = if case.cfg.crash.is_some() {
        let (mut sim, honest, stores, crypto) = testbed::build_crash_single_hop(&case.cfg);
        testbed::apply_crash_timeline(&case.cfg, &mut sim, &crypto, &stores);
        (sim, honest)
    } else if case.cfg.churn.is_some() {
        // Membership runs simulate joiners from the start; a joiner (or
        // leaver) that never adopts the agreed chain shows up as a stall,
        // a bad reshare/activation as divergence.
        testbed::build_churn_single_hop(&case.cfg)
    } else {
        testbed::build_single_hop(&case.cfg)
    };
    let deadline = SimTime::ZERO + case.cfg.deadline;
    let budget = case.event_budget;
    sim.run_until_pred(deadline, |s| {
        s.events_processed() >= budget
            || s.behaviors().all(|(id, b)| !honest[id.index()] || b.is_done())
    });
    let done = sim.behaviors().all(|(id, b)| !honest[id.index()] || b.is_done());
    let chains: Vec<Vec<Digest32>> = sim
        .behaviors()
        .filter(|(id, _)| honest[id.index()])
        .map(|(_, b)| block_digests(b.blocks()))
        .collect();
    let reference = chains.first().cloned().unwrap_or_default();
    let divergent = chains.iter().any(|c| {
        let common = c.len().min(reference.len());
        c[..common] != reference[..common]
    });
    let verdict = if divergent {
        FuzzVerdict::Divergence
    } else if !done {
        FuzzVerdict::Stall
    } else {
        FuzzVerdict::Ok
    };
    FuzzOutcome {
        verdict,
        events: sim.events_processed(),
        blocks: chains.iter().map(|c| c.len() as u64).max().unwrap_or(0),
        collisions: sim.metrics().collisions,
        chain: reference,
    }
}

// ------------------------------------------------------------------
// Coverage.

fn hex32(d: &Digest32) -> String {
    use std::fmt::Write as _;
    d.0.iter().fold(String::with_capacity(64), |mut s, b| {
        let _ = write!(s, "{b:02x}");
        s
    })
}

fn fnv1a(hash: &mut u64, data: &[u8]) {
    for &b in data {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn bucket(x: u64) -> u64 {
    64 - x.leading_zeros() as u64
}

/// The coverage signature of one run: a deterministic FNV-1a hash over the
/// case's structural features and the run's coarse observables. A mutant
/// whose key is new exercised a combination the corpus hadn't.
pub fn coverage_key(case: &FuzzCase, out: &FuzzOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, case.cfg.protocol.slug().as_bytes());
    fnv1a(&mut h, &(case.cfg.n as u64).to_le_bytes());
    fnv1a(&mut h, &case.cfg.epochs.to_le_bytes());
    for (node, mode) in &case.cfg.byzantine {
        fnv1a(&mut h, &(*node as u64).to_le_bytes());
        fnv1a(&mut h, format!("{mode:?}").as_bytes());
    }
    fnv1a(&mut h, format!("{:?}", case.cfg.loss).as_bytes());
    // Fold only non-default depths so pre-pipelining keys are unchanged.
    if case.cfg.pipeline_depth != 1 {
        fnv1a(&mut h, &case.cfg.pipeline_depth.to_le_bytes());
    }
    if let Some(s) = &case.cfg.sched {
        fnv1a(&mut h, format!("{:?}", s.policy).as_bytes());
        fnv1a(&mut h, &bucket(s.budget.as_micros()).to_le_bytes());
    }
    // Fold only present plans so pre-churn keys are unchanged.
    if let Some(plan) = &case.cfg.crash {
        for ev in &plan.crashes {
            fnv1a(&mut h, &(ev.node as u64).to_le_bytes());
            fnv1a(&mut h, &bucket(ev.at_us).to_le_bytes());
            fnv1a(&mut h, &bucket(ev.restart_us).to_le_bytes());
        }
    }
    // Fold only present plans so pre-membership keys are unchanged.
    if let Some(plan) = &case.cfg.churn {
        fnv1a(&mut h, &plan.from_epoch.to_le_bytes());
        for op in &plan.ops {
            fnv1a(&mut h, format!("{op}").as_bytes());
        }
    }
    fnv1a(&mut h, out.verdict.name().as_bytes());
    fnv1a(&mut h, &bucket(out.events).to_le_bytes());
    fnv1a(&mut h, &out.blocks.to_le_bytes());
    fnv1a(&mut h, &bucket(out.collisions).to_le_bytes());
    h
}

// ------------------------------------------------------------------
// Mutation.

/// The protocols a campaign draws from.
fn mutate(case: &FuzzCase, protocols: &[Protocol], rng: &mut ChaCha12Rng) -> FuzzCase {
    let mut cfg = case.cfg.clone();
    // One structural mutation per generation keeps minimization short.
    match rng.random_range(0..12u32) {
        0 => cfg.seed = rng.random_range(1..1 << 16),
        1 => {
            cfg.protocol = protocols[rng.random_range(0..protocols.len())];
            if !cfg.protocol.supports_churn() {
                cfg.churn = None;
            }
        }
        2 => {
            // Place (or clear) one Byzantine node; n=4 tolerates f=1, so a
            // placement also clears any crash plan (churn + Byzantine
            // together would exceed f) and any membership plan (honest
            // runs only).
            cfg.byzantine.clear();
            if rng.random_bool(0.75) {
                let node = rng.random_range(0..cfg.n);
                let mode = ByzantineMode::ALL[rng.random_range(0..ByzantineMode::ALL.len())];
                cfg.byzantine.push((node, mode));
                cfg.crash = None;
                cfg.churn = None;
            }
        }
        3 => {
            cfg.loss = if rng.random_bool(0.5) {
                wbft_wireless::LossModel::None
            } else {
                wbft_wireless::LossModel::Uniform { p: rng.random_range(1..=30u32) as f64 / 100.0 }
            };
        }
        4 => {
            let budget = SimDuration::from_secs(rng.random_range(2..30));
            let seed = rng.random_range(0..1 << 16);
            let policy = match rng.random_range(0..3u32) {
                0 => SchedPolicy::Reorder { p: rng.random_range(10..=99u32) as f64 / 100.0 },
                1 => SchedPolicy::Victim {
                    victims: vec![NodeId(rng.random_range(0..cfg.n as u16))],
                },
                _ => SchedPolicy::CoinStarve { pass: rng.random_range(0..3) },
            };
            cfg.sched = Some(SchedConfig { seed, budget, policy });
        }
        5 => cfg.sched = None,
        6 => {
            cfg.epochs = rng.random_range(1..=2);
            // Too few epochs for a membership change to activate.
            cfg.churn = None;
        }
        7 => cfg.workload.batch_size = [4usize, 8, 16][rng.random_range(0..3usize)],
        8 => {
            cfg.pipeline_depth = [1u64, 2, 4][rng.random_range(0..3usize)];
            if cfg.pipeline_depth != 1 {
                cfg.churn = None;
            }
        }
        9 => {
            // Crash one node mid-run; the plan replaces any Byzantine
            // placement (crash + Byzantine together would exceed f = 1)
            // and any membership plan (they do not compose yet).
            cfg.byzantine.clear();
            cfg.churn = None;
            let node = rng.random_range(0..cfg.n);
            let at_us = rng.random_range(1..=20u64) * 1_000_000;
            let down_us = rng.random_range(5..=40u64) * 1_000_000;
            cfg.crash = Some(crate::testbed::CrashPlan {
                crashes: vec![crate::testbed::CrashEvent {
                    node,
                    at_us,
                    restart_us: at_us + down_us,
                }],
            });
        }
        10 => cfg.crash = None,
        _ => {
            // Schedule (or clear) one membership swap: a fresh node joins,
            // a random genesis member leaves. Membership runs are honest,
            // sequential, crash-free and HoneyBadger-family only, so the
            // arm clears everything it does not compose with.
            cfg.churn = None;
            let family: Vec<Protocol> =
                protocols.iter().copied().filter(Protocol::supports_churn).collect();
            if rng.random_bool(0.75) && !family.is_empty() {
                if !cfg.protocol.supports_churn() {
                    cfg.protocol = family[rng.random_range(0..family.len())];
                }
                cfg.byzantine.clear();
                cfg.crash = None;
                cfg.pipeline_depth = 1;
                let from_epoch = rng.random_range(0..=1u64);
                cfg.epochs = cfg.epochs.max(from_epoch + wbft_membership::ACTIVATION_DELAY + 1);
                cfg.churn = Some(crate::testbed::ChurnPlan {
                    from_epoch,
                    ops: vec![
                        wbft_membership::MembershipOp::Join(cfg.n as u16),
                        wbft_membership::MembershipOp::Leave(rng.random_range(0..cfg.n as u16)),
                    ],
                });
            }
        }
    }
    FuzzCase { label: String::new(), cfg, event_budget: case.event_budget }
}

fn relabel(case: &mut FuzzCase, index: u32) {
    let sched = match &case.cfg.sched {
        None => "nosched".to_string(),
        Some(s) => match &s.policy {
            SchedPolicy::Reorder { .. } => "reorder".to_string(),
            SchedPolicy::Victim { .. } => "victim".to_string(),
            SchedPolicy::CoinStarve { pass } => format!("coinstarve{pass}"),
        },
    };
    let byz = if case.cfg.byzantine.is_empty() { "honest" } else { "byz" };
    let depth = if case.cfg.pipeline_depth == 1 {
        String::new()
    } else {
        format!(".w{}", case.cfg.pipeline_depth)
    };
    let churn = if case.cfg.crash.is_some() { ".churn" } else { "" };
    let member = if case.cfg.churn.is_some() { ".member" } else { "" };
    case.label = format!(
        "fuzz-{index:04}.{}.n{}.{sched}.{byz}{depth}{churn}{member}.seed{}",
        case.cfg.protocol.slug(),
        case.cfg.n,
        case.cfg.seed
    );
}

// ------------------------------------------------------------------
// Campaign.

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Scenarios to execute (including the seed corpus).
    pub scenarios: u32,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Protocols to draw mutants from.
    pub protocols: Vec<Protocol>,
    /// Event budget per case.
    pub event_budget: u64,
}

impl FuzzConfig {
    /// The CI smoke shape: a bounded fixed-seed campaign over the two
    /// shared-coin single-hop protocols.
    pub fn smoke(scenarios: u32) -> Self {
        FuzzConfig {
            scenarios,
            seed: 0xF022,
            protocols: vec![Protocol::Beat, Protocol::HoneyBadgerSc],
            event_budget: DEFAULT_EVENT_BUDGET,
        }
    }
}

/// Default per-case event budget: comfortably above what a healthy
/// small-batch single-hop epoch needs (measured in the tens of thousands),
/// low enough that a stalled case aborts quickly.
pub const DEFAULT_EVENT_BUDGET: u64 = 400_000;

/// One failing case, minimized, with its outcome.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The minimized case.
    pub case: FuzzCase,
    /// Its (re-verified) outcome.
    pub outcome: FuzzOutcome,
}

/// Campaign result.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub executed: u32,
    /// Distinct coverage keys observed.
    pub coverage: usize,
    /// Corpus size at the end (coverage-new cases).
    pub corpus: usize,
    /// Minimized failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

/// The base scenario mutants grow from: the paper's 4-node single-hop
/// setting shrunk to one small epoch so a campaign of hundreds of cases
/// stays affordable.
pub fn base_case(protocol: Protocol, event_budget: u64) -> FuzzCase {
    let mut cfg = TestbedConfig::single_hop(protocol);
    cfg.epochs = 1;
    cfg.workload.batch_size = 8;
    FuzzCase { label: format!("base.{}", protocol.slug()), cfg, event_budget }
}

/// The base case at pipeline depth `W`: `depth` epochs keep their
/// dissemination in flight while earlier epochs finish agreement. Pinned
/// as fixtures so the pipelined epoch machinery (decided-block buffering,
/// in-order finalization, early decryption) stays deterministic and live
/// under the fuzzer's replay check.
pub fn pipelined_case(protocol: Protocol, depth: u64, event_budget: u64) -> FuzzCase {
    let mut case = base_case(protocol, event_budget);
    case.cfg.epochs = 2;
    case.cfg.pipeline_depth = depth;
    case.label = format!("pipelined-w{depth}.{}", protocol.slug());
    case
}

/// The canonical churn case: one node dies five seconds in (volatile state
/// gone, in-flight frames cut) and restarts after a 25-second outage,
/// replaying its durable journal and catching the missed commits up over
/// the anti-entropy sync channel. A restarted node that fails to converge
/// shows up as a stall; a bad recovery shows up as divergence.
pub fn crash_restart_case(protocol: Protocol, event_budget: u64) -> FuzzCase {
    let mut case = base_case(protocol, event_budget);
    case.cfg.epochs = 2;
    case.cfg.crash = Some(crate::testbed::CrashPlan {
        crashes: vec![crate::testbed::CrashEvent {
            node: 2,
            at_us: 5_000_000,
            restart_us: 30_000_000,
        }],
    });
    case.label = format!("crash-restart.{}", protocol.slug());
    case
}

/// The canonical dynamic-membership case: node `n` joins and node 0
/// leaves, committed from epoch 0 and activating two epochs later, so the
/// last epoch runs under the new committee's quorum math and reshared
/// keys. A joiner that never adopts the chain (or a leaver that never
/// learns the tail) shows up as a stall; a bad reshare or a quorum-math
/// split as divergence.
pub fn membership_churn_case(protocol: Protocol, event_budget: u64) -> FuzzCase {
    let mut case = base_case(protocol, event_budget);
    case.cfg.epochs = 3;
    case.cfg.churn = Some(crate::testbed::ChurnPlan {
        from_epoch: 0,
        ops: vec![
            wbft_membership::MembershipOp::Join(case.cfg.n as u16),
            wbft_membership::MembershipOp::Leave(0),
        ],
    });
    case.label = format!("membership-swap.{}", protocol.slug());
    case
}

/// The canonical protocol-aware attack: hold back every coin share after
/// the first, per receiver and round, for the full budget — the
/// quorum-completing `f+1`-th share arrives late everywhere, so every ABA
/// round's common coin is starved until the scheduler's budget forces
/// delivery. Shared-coin protocols must ride it out (liveness with bounded
/// delays); this case pins that down as a regression fixture.
pub fn coin_starvation_case(protocol: Protocol, event_budget: u64) -> FuzzCase {
    let mut case = base_case(protocol, event_budget);
    case.cfg.sched = Some(SchedConfig {
        seed: 0xC01,
        budget: SimDuration::from_secs(20),
        policy: SchedPolicy::CoinStarve { pass: 1 },
    });
    case.label = format!("coin-quorum-starvation.{}", protocol.slug());
    case
}

/// Runs a coverage-guided campaign. Deterministic for a fixed
/// [`FuzzConfig`]: the corpus, coverage count, and every failure (and its
/// minimized fixture bytes) depend only on the config.
pub fn campaign(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
    let mut corpus: Vec<FuzzCase> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut failures = Vec::new();
    let mut executed = 0u32;

    // Seed corpus: every protocol's base case, its coin-starvation schedule
    // (only meaningful for shared-coin deployments but harmless elsewhere —
    // the classifier just never fires), its crash-restart churn case, and —
    // for the HoneyBadger family — its membership-swap case.
    let mut pending: Vec<FuzzCase> = cfg
        .protocols
        .iter()
        .flat_map(|p| {
            [
                base_case(*p, cfg.event_budget),
                coin_starvation_case(*p, cfg.event_budget),
                crash_restart_case(*p, cfg.event_budget),
            ]
        })
        .chain(
            cfg.protocols
                .iter()
                .filter(|p| p.supports_churn())
                .map(|p| membership_churn_case(*p, cfg.event_budget)),
        )
        .collect();

    while executed < cfg.scenarios {
        let mut case = match pending.pop() {
            Some(c) => c,
            None => {
                let parent = &corpus[rng.random_range(0..corpus.len())];
                let mut m = mutate(parent, &cfg.protocols, &mut rng);
                relabel(&mut m, executed);
                m
            }
        };
        if case.label.is_empty() {
            relabel(&mut case, executed);
        }
        let outcome = run_case(&case);
        executed += 1;
        let key = coverage_key(&case, &outcome);
        if seen.insert(key) {
            corpus.push(case.clone());
        }
        if outcome.verdict != FuzzVerdict::Ok {
            let minimized = minimize(&case, outcome.verdict);
            let outcome = run_case(&minimized);
            failures.push(FuzzFailure { case: minimized, outcome });
        }
    }
    FuzzReport { executed, coverage: seen.len(), corpus: corpus.len(), failures }
}

// ------------------------------------------------------------------
// Minimization.

/// Greedily shrinks a failing case while preserving its verdict: each
/// simplification (drop Byzantine placement, drop loss, drop the
/// scheduler, shrink the workload) is kept only if the failure reproduces.
/// The result is the fixture a regression test replays.
pub fn minimize(case: &FuzzCase, verdict: FuzzVerdict) -> FuzzCase {
    let mut best = case.clone();
    let attempts: [fn(&mut TestbedConfig); 9] = [
        |c| c.byzantine.clear(),
        |c| c.loss = wbft_wireless::LossModel::None,
        |c| c.sched = None,
        |c| c.adversary = wbft_wireless::AdversaryConfig::benign(),
        // Epochs can only shrink where no membership change needs the room
        // to activate.
        |c| {
            if c.churn.is_none() {
                c.epochs = 1;
            }
        },
        |c| c.workload.batch_size = 4,
        |c| c.pipeline_depth = 1,
        |c| c.crash = None,
        |c| c.churn = None,
    ];
    for attempt in attempts {
        let mut candidate = best.clone();
        attempt(&mut candidate.cfg);
        if candidate.cfg.to_json().pretty() == best.cfg.to_json().pretty() {
            continue; // no-op simplification
        }
        if run_case(&candidate).verdict == verdict {
            best = candidate;
        }
    }
    best.label = format!("{}.min", case.label);
    best
}

// ------------------------------------------------------------------
// Fixtures.

/// Canonical fixture encoding of a case and its expected verdict.
pub fn fixture_string(case: &FuzzCase, expect: FuzzVerdict) -> String {
    wbft_report::to_file_string(&Json::obj([
        ("label", Json::str(case.label.clone())),
        ("config", case.cfg.to_json()),
        ("event_budget", Json::u64(case.event_budget)),
        ("expect", Json::str(expect.name())),
    ]))
}

/// Decodes a fixture produced by [`fixture_string`].
pub fn decode_fixture(j: &Json) -> Result<(FuzzCase, FuzzVerdict), JsonError> {
    let label: String = field(j, "label")?;
    let cfg: TestbedConfig = field(j, "config")?;
    let event_budget: u64 = field(j, "event_budget")?;
    let expect: String = field(j, "expect")?;
    let expect = FuzzVerdict::from_name(&expect)
        .ok_or_else(|| JsonError("unknown expected verdict".into()))?;
    Ok((FuzzCase { label, cfg, event_budget }, expect))
}

/// Replays a fixture file: runs the case twice and checks that (a) both
/// runs produce byte-identical outcome encodings (determinism) and (b) the
/// verdict matches the fixture's expectation. Returns the outcome.
pub fn replay_fixture(path: &Path) -> io::Result<FuzzOutcome> {
    let j = wbft_report::read_file(path)?;
    let (case, expect) = decode_fixture(&j)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))?;
    let first = run_case(&case);
    let second = run_case(&case);
    if first.to_json().pretty() != second.to_json().pretty() {
        return Err(io::Error::other(format!(
            "{}: replay not deterministic",
            path.display()
        )));
    }
    if first.verdict != expect {
        return Err(io::Error::other(format!(
            "{}: expected {}, got {}",
            path.display(),
            expect.name(),
            first.verdict.name()
        )));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wbft_wireless::ChannelId;

    #[test]
    fn coin_classifier_ignores_non_coin_frames() {
        assert_eq!(classify_coin(b"not an envelope"), None);
        let mut sched = CoinStarveScheduler {
            pass: 1,
            budget: SimDuration::from_secs(5),
            seen: BTreeMap::new(),
        };
        let payload = Bytes::from_static(&[0u8; 80]);
        let d = Delivery {
            src: NodeId(0),
            dst: NodeId(1),
            channel: ChannelId(0),
            payload: &payload,
            nominal_len: 80,
            now: SimTime::ZERO,
        };
        assert_eq!(sched.delay(&d), SimDuration::ZERO, "garbage frames pass through");
    }

    #[test]
    fn base_case_runs_clean() {
        let out = run_case(&base_case(Protocol::Beat, DEFAULT_EVENT_BUDGET));
        assert_eq!(out.verdict, FuzzVerdict::Ok);
        assert!(out.events > 0 && out.events < DEFAULT_EVENT_BUDGET);
        assert_eq!(out.blocks, 1);
        assert!(!out.chain.is_empty());
    }

    #[test]
    fn coin_starvation_case_survives_or_is_caught() {
        // The canonical protocol-aware schedule. Shared-coin BEAT must ride
        // it out within the budget (bounded delays preserve liveness); any
        // other verdict is a real finding and belongs in a fixture.
        let out = run_case(&coin_starvation_case(Protocol::Beat, DEFAULT_EVENT_BUDGET));
        assert_eq!(out.verdict, FuzzVerdict::Ok, "events={} blocks={}", out.events, out.blocks);
    }

    #[test]
    fn crash_restart_case_converges() {
        let out = run_case(&crash_restart_case(Protocol::Beat, DEFAULT_EVENT_BUDGET));
        assert_eq!(out.verdict, FuzzVerdict::Ok, "events={} blocks={}", out.events, out.blocks);
        assert_eq!(out.blocks, 2);
    }

    #[test]
    fn membership_churn_case_converges() {
        let out = run_case(&membership_churn_case(Protocol::Beat, DEFAULT_EVENT_BUDGET));
        assert_eq!(out.verdict, FuzzVerdict::Ok, "events={} blocks={}", out.events, out.blocks);
        assert_eq!(out.blocks, 3);
    }

    #[test]
    fn membership_case_replay_is_deterministic() {
        let case = membership_churn_case(Protocol::HoneyBadgerSc, DEFAULT_EVENT_BUDGET);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a, b);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn crash_case_replay_is_deterministic() {
        let case = crash_restart_case(Protocol::Beat, DEFAULT_EVENT_BUDGET);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a, b);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn run_case_is_deterministic() {
        let case = coin_starvation_case(Protocol::Beat, DEFAULT_EVENT_BUDGET);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a, b);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn fixtures_round_trip() {
        let case = coin_starvation_case(Protocol::Beat, DEFAULT_EVENT_BUDGET);
        let text = fixture_string(&case, FuzzVerdict::Ok);
        let (back, expect) = decode_fixture(&wbft_report::parse(&text).unwrap()).unwrap();
        assert_eq!(expect, FuzzVerdict::Ok);
        assert_eq!(back.label, case.label);
        assert_eq!(back.event_budget, case.event_budget);
        assert_eq!(fixture_string(&back, expect), text);
    }

    #[test]
    fn tiny_campaign_is_deterministic_and_counts_coverage() {
        let cfg = FuzzConfig {
            scenarios: 4,
            seed: 7,
            protocols: vec![Protocol::Beat],
            event_budget: DEFAULT_EVENT_BUDGET,
        };
        let a = campaign(&cfg);
        let b = campaign(&cfg);
        assert_eq!(a.executed, 4);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.failures.len(), b.failures.len());
        assert!(a.coverage >= 2, "base and starved cases must cover differently");
    }
}
