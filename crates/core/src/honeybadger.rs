//! Wireless HoneyBadgerBFT (and BEAT) — paper §V-A, Fig. 7a.
//!
//! Per epoch: every node threshold-encrypts its transaction batch and
//! proposes it through one of N batched RBC instances; once `2f+1` RBC
//! instances deliver, the node inputs 1 to the ABAs of the delivered
//! instances and 0 to the rest, starting **all ABA instances
//! simultaneously** — the paper's liveness rule that stops Byzantine nodes
//! from learning the (shared) round coin before the votes are bound. The
//! union of proposals whose ABA decided 1 forms the epoch set; nodes then
//! exchange threshold-decryption shares (batched into one packet per
//! channel access) and commit the decrypted union as the block.
//!
//! The engine is generic over the broadcast and agreement deployments, so
//! the same code yields HoneyBadgerBFT-LC / -SC, BEAT (coin-flipping ABA),
//! and the unbatched `*-baseline` variants.

use crate::driver::{sessions, Block, Engine, EngineOut, Tx};
use crate::membership::MembershipCtl;
use crate::service::StopCondition;
use crate::workload::{decode_batch, encode_batch, BatchSource};
#[cfg(test)]
use crate::workload::Workload;
use bytes::Bytes;
use std::collections::VecDeque;
use wbft_components::aba_lc::AbaLcBatch;
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::baseline::{BaselineAbaSet, BaselineRbcSet};
use wbft_components::rbc::RbcBatch;
use wbft_components::{Actions, BinaryAgreement, Broadcaster, NodeCrypto, Params};
use wbft_crypto::thresh_enc::{Ciphertext, DecShare};
use wbft_crypto::GroupElem;
use wbft_net::{Bitmap, Body, CoinFlavor, RetransmitPolicy};

const TIMER_DEC_RETX: u32 = 0;

/// Retransmission timer of this node's resharing deal (reshare sessions).
const TIMER_RESHARE_RETX: u32 = 0;

/// Cadence at which a canonical dealer re-serves its deal set. Deals are
/// idempotent (duplicates drop at the ceremony), so a fixed cadence is
/// enough; it keeps running until the dealer's engine is done because a
/// lagging receiver — a joiner still bootstrapping its chain — may need
/// the deal long after the chain passed the activation epoch.
const RESHARE_RETX_DELAY: wbft_wireless::SimDuration =
    wbft_wireless::SimDuration::from_millis(700);

// ------------------------------------------------------------------
// Ciphertext wire helpers (no binary serde in the dependency set).

/// Encodes a threshold ciphertext into proposal bytes.
pub fn encode_ciphertext(ct: &Ciphertext) -> Bytes {
    let mut out = Vec::with_capacity(ct.wire_len());
    out.extend_from_slice(&ct.u.to_bytes());
    out.extend_from_slice(ct.tag.as_bytes());
    out.extend_from_slice(&ct.body);
    Bytes::from(out)
}

/// Decodes proposal bytes back into a ciphertext (`None` = malformed).
pub fn decode_ciphertext(data: &[u8]) -> Option<Ciphertext> {
    if data.len() < 64 {
        return None;
    }
    let u_bytes: [u8; 32] = data[..32].try_into().ok()?;
    let u = GroupElem::from_bytes(&u_bytes).ok()?;
    let tag = wbft_crypto::Digest32(data[32..64].try_into().ok()?);
    Some(Ciphertext { u, tag, body: data[64..].to_vec() })
}

/// The decryption-label of a proposer's epoch ciphertext.
fn ct_label(epoch: u64, proposer: usize) -> Vec<u8> {
    let mut l = Vec::with_capacity(24);
    l.extend_from_slice(b"wbft/hb/ct");
    l.extend_from_slice(&epoch.to_le_bytes());
    l.extend_from_slice(&(proposer as u64).to_le_bytes());
    l
}

// ------------------------------------------------------------------
// Decryption stage.

/// Collects and serves threshold-decryption shares for the epoch's accepted
/// ciphertexts. Batched mode ships one [`Body::DecShareBatch`] per channel
/// access; baseline mode one [`Body::BaseDecShare`] per proposer.
#[derive(Debug)]
struct DecStage {
    p: Params,
    epoch: u64,
    batched: bool,
    cts: Vec<Option<Ciphertext>>,
    active: Vec<bool>,
    my_sent: Vec<bool>,
    /// This node's own share per proposer, cached so retransmission-heavy
    /// flushes don't recompute the DLEQ proof every packet build.
    my_shares: Vec<Option<DecShare>>,
    shares: Vec<Vec<DecShare>>,
    reporters: Vec<u64>,
    plaintexts: Vec<Option<Vec<u8>>>,
    dirty: bool,
    timer_armed: bool,
    retx: wbft_components::context::RetxState,
}

impl DecStage {
    fn new(p: Params, epoch: u64, batched: bool) -> Self {
        DecStage {
            epoch,
            batched,
            cts: vec![None; p.n],
            active: vec![false; p.n],
            my_sent: vec![false; p.n],
            my_shares: vec![None; p.n],
            shares: vec![Vec::new(); p.n],
            reporters: vec![0; p.n],
            plaintexts: vec![None; p.n],
            dirty: false,
            timer_armed: false,
            retx: wbft_components::context::RetxState::new(
                RetransmitPolicy::lora_class(),
                &p,
            ),
            p,
        }
    }

    /// Activates decryption of proposer `j`'s ciphertext.
    fn activate(&mut self, j: usize, ct: Ciphertext, crypto: &NodeCrypto, acts: &mut Actions) {
        if self.active[j] {
            return;
        }
        self.active[j] = true;
        let my_share = (!self.my_sent[j]).then(|| crypto.enc_sec.dec_share(&ct));
        self.cts[j] = Some(ct);
        if let Some(share) = my_share {
            self.my_sent[j] = true;
            // Producing a decryption share costs one share-signing op.
            acts.charge(crypto.suite.threshold.signature_profile().sign_share_us);
            self.my_shares[j] = Some(share);
            self.record(j, share, crypto, acts, true);
            self.dirty = true;
        }
        self.flush(acts);
    }

    fn record(
        &mut self,
        j: usize,
        share: DecShare,
        crypto: &NodeCrypto,
        acts: &mut Actions,
        own: bool,
    ) {
        if j >= self.p.n || self.plaintexts[j].is_some() {
            return;
        }
        let Some(ct) = &self.cts[j] else {
            // Shares may arrive before our RBC delivered the ciphertext;
            // they are re-served by peers' retransmissions once it does.
            return;
        };
        let bit = 1u64 << (share.index.value() - 1);
        if self.reporters[j] & bit != 0 {
            return;
        }
        if !own {
            acts.charge(crypto.suite.threshold.signature_profile().verify_share_us);
        }
        if crypto.enc_pub.verify_share(ct, &share).is_err() {
            return;
        }
        self.reporters[j] |= bit;
        self.shares[j].push(share);
        if self.shares[j].len() > self.p.f {
            acts.charge(crypto.suite.threshold.signature_profile().combine_us);
            let label = ct_label(self.epoch, j);
            if let Ok(pt) = crypto.enc_pub.decrypt(&label, ct, &self.shares[j]) {
                self.plaintexts[j] = Some(pt);
                self.dirty = true;
            } else {
                // A corrupt share poisoned the combination; drop collected
                // shares and rebuild from retransmissions.
                self.shares[j].clear();
                self.reporters[j] = 0;
                if self.my_sent[j] {
                    if let Some(share) = self.my_shares[j] {
                        self.record(j, share, crypto, acts, true);
                    }
                }
            }
        }
    }

    fn build(&self) -> Vec<Body> {
        if self.batched {
            let mut shares = Vec::new();
            let mut dec_nack = Bitmap::new(self.p.n);
            for j in 0..self.p.n {
                if self.my_sent[j] {
                    if let Some(share) = self.my_shares[j] {
                        shares.push((j as u8, share));
                    }
                }
                if self.active[j] && self.plaintexts[j].is_none() {
                    dec_nack.set(j, true);
                }
            }
            vec![Body::DecShareBatch { shares, dec_nack }]
        } else {
            let mut out = Vec::new();
            for j in 0..self.p.n {
                if self.my_sent[j] {
                    if let Some(share) = self.my_shares[j] {
                        out.push(Body::BaseDecShare { proposer: j as u8, share });
                    }
                }
            }
            out
        }
    }

    fn flush(&mut self, acts: &mut Actions) {
        if self.dirty {
            for body in self.build() {
                acts.send(body);
            }
            self.dirty = false;
            self.retx.reset();
        }
        if !self.timer_armed {
            self.timer_armed = true;
            let d = self.retx.next_delay();
            acts.timer(d, TIMER_DEC_RETX);
        }
    }

    fn complete_for(&self, accepted: &[usize]) -> bool {
        accepted.iter().all(|&j| self.plaintexts[j].is_some())
    }

    fn handle(&mut self, from: usize, body: &Body, crypto: &NodeCrypto, acts: &mut Actions) {
        match body {
            Body::DecShareBatch { shares, dec_nack } => {
                for (j, share) in shares {
                    self.record(*j as usize, *share, crypto, acts, false);
                }
                if dec_nack.len() == self.p.n
                    && dec_nack.iter_set().any(|j| self.my_sent[j])
                {
                    self.retx.peer_behind = true;
                }
            }
            Body::BaseDecShare { proposer, share } => {
                self.record(*proposer as usize, *share, crypto, acts, false);
            }
            _ => {}
        }
        let _ = from;
        self.flush(acts);
    }

    fn on_timer(&mut self, local: u32, accepted: Option<&[usize]>, acts: &mut Actions) {
        if local != TIMER_DEC_RETX {
            return;
        }
        let complete = accepted.map(|a| self.complete_for(a)).unwrap_or(false);
        if self.active.iter().any(|a| *a) && self.retx.should_send(complete) {
            for body in self.build() {
                acts.send(body);
            }
            self.retx.peer_behind = false;
        }
        let d = self.retx.next_delay();
        acts.timer(d, TIMER_DEC_RETX);
    }
}

// ------------------------------------------------------------------
// The engine.

/// One epoch's live components.
struct EpochState<B, A> {
    epoch: u64,
    /// Committee size of this epoch (varies across a membership change).
    n: usize,
    /// Fault budget of this epoch.
    f: usize,
    rbc: B,
    aba: A,
    dec: DecStage,
    aba_inputs_sent: bool,
    accepted: Option<Vec<usize>>,
    /// Decided block awaiting in-order finalization (pipelined epochs may
    /// decide out of order; the chain commits strictly by epoch).
    decided: Option<Block>,
    committed: bool,
}

/// Per-epoch ABA factory: builds a fresh agreement instance from the
/// epoch's committee parameters and the node's (key-epoch-aware) crypto.
type MakeAba<A> = Box<dyn FnMut(Params, &NodeCrypto) -> A + Send>;

/// HoneyBadgerBFT/BEAT engine, generic over deployment style.
pub struct HbEngine<B, A> {
    crypto: NodeCrypto,
    n: usize,
    f: usize,
    me: usize,
    source: BatchSource,
    stop: StopCondition,
    /// Epochs opened so far (`is_done` compares against committed blocks).
    started: u64,
    /// Pipeline depth `W`: epochs allowed in flight past the committed
    /// chain. `W = 1` is the strictly sequential behavior.
    depth: u64,
    make_rbc: Box<dyn FnMut(Params) -> B + Send>,
    make_aba: MakeAba<A>,
    batched_dec: bool,
    epochs: VecDeque<EpochState<B, A>>,
    blocks: Vec<Block>,
    rng: rand_chacha::ChaCha12Rng,
    /// Dynamic membership (`None` = the fixed genesis committee forever;
    /// that path is byte-identical to builds without this field).
    membership: Option<MembershipCtl>,
}

impl<B: Broadcaster, A: BinaryAgreement> HbEngine<B, A> {
    /// Creates the engine; `make_rbc`/`make_aba` build fresh components per
    /// epoch.
    pub fn new(
        crypto: NodeCrypto,
        source: impl Into<BatchSource>,
        stop: StopCondition,
        batched_dec: bool,
        make_rbc: Box<dyn FnMut(Params) -> B + Send>,
        make_aba: MakeAba<A>,
    ) -> Self {
        use rand::SeedableRng;
        let source = source.into();
        let n = crypto.peer_keys.len();
        let f = (n - 1) / 3;
        let me = crypto.me;
        let rng = rand_chacha::ChaCha12Rng::seed_from_u64(0xb0b0 ^ ((me as u64) << 16));
        HbEngine {
            crypto,
            n,
            f,
            me,
            source,
            stop,
            started: 0,
            depth: 1,
            make_rbc,
            make_aba,
            batched_dec,
            epochs: VecDeque::new(),
            blocks: Vec::new(),
            rng,
            membership: None,
        }
    }

    /// Mutable access to the proposal source (the multi-hop tier installs
    /// fixed proposals before starting an epoch).
    pub fn source_mut(&mut self) -> &mut BatchSource {
        &mut self.source
    }

    /// Sets the pipeline depth `W` (clamped to at least 1). Call before
    /// `start`; `W = 1` reproduces the sequential engine byte for byte.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Enables dynamic membership: per-epoch committee parameters and
    /// threshold keys come from the chain-derived controller instead of
    /// the fixed genesis deal. Schedule the node's own join/leave ops on
    /// the controller before passing it in.
    pub fn with_membership(mut self, ctl: MembershipCtl) -> Self {
        self.membership = Some(ctl);
        self
    }

    /// The crypto bundle in effect at `epoch`: the membership controller's
    /// per-key-epoch bundle, falling back to the engine's fixed genesis
    /// bundle (the only bundle there is without membership; with it, open
    /// epochs are gated on the controller's bundle existing).
    fn epoch_crypto<'a>(
        base: &'a NodeCrypto,
        membership: &'a Option<MembershipCtl>,
        epoch: u64,
    ) -> &'a NodeCrypto {
        match membership {
            Some(ctl) => ctl.crypto_at(epoch).unwrap_or(base),
            None => base,
        }
    }

    fn begin_epoch(&mut self, epoch: u64, out: &mut EngineOut) {
        self.started = self.started.max(epoch + 1);
        let (n, f, me) = match &self.membership {
            Some(ctl) => match ctl.committee_at(epoch) {
                Some(t) => t,
                // `open_epochs` gates on `can_open`; reaching this means a
                // logic bug upstream — refuse to open rather than panic.
                None => return,
            },
            None => (self.n, self.f, self.me),
        };
        let p_rbc = Params::new(n, me, sessions::of(epoch, sessions::BROADCAST));
        let p_aba = Params::new(n, me, sessions::of(epoch, sessions::ABA));
        let p_dec = Params::new(n, me, sessions::of(epoch, sessions::DEC));
        let crypto = Self::epoch_crypto(&self.crypto, &self.membership, epoch);
        let mut rbc = (self.make_rbc)(p_rbc);
        let aba = (self.make_aba)(p_aba, crypto);
        let dec = DecStage::new(p_dec, epoch, self.batched_dec);

        // Threshold-encrypt the batch (censorship resilience). Membership
        // ops this node wants committed ride along as reserved
        // transactions (deduplicated by the union-commit, like any tx).
        let mut txs = self.source.batch(epoch, me);
        if let Some(ctl) = &self.membership {
            for tx in ctl.injectable(epoch) {
                if !txs.contains(&tx) {
                    txs.push(tx);
                }
            }
        }
        let pt = encode_batch(&txs);
        // Charge an encryption as one share-signing-class operation.
        let mut acts = Actions::new();
        acts.charge(crypto.suite.threshold.signature_profile().sign_share_us);
        let ct = crypto.enc_pub.encrypt(&ct_label(epoch, me), &pt, &mut self.rng);
        rbc.start(encode_ciphertext(&ct), &mut acts);
        out.absorb(p_rbc.session, &mut acts);

        self.epochs.push_back(EpochState {
            epoch,
            n,
            f,
            rbc,
            aba,
            dec,
            aba_inputs_sent: false,
            accepted: None,
            decided: None,
            committed: false,
        });
        // Keep one finalized epoch beyond the pipeline window alive as a
        // NACK responder for lagging peers.
        let keep = self.depth as usize + 1;
        while self.epochs.len() > keep {
            self.epochs.pop_front();
        }
    }

    /// Opens dissemination for new epochs until `depth` are in flight past
    /// the committed chain (or the stop condition refuses). The epoch
    /// right past the chain head always opens — that is the sequential
    /// cadence every depth shares — but *extra* pipelined epochs open only
    /// while the source has work for them: an eager open on an idle
    /// mempool would spend a full epoch of airtime on an empty proposal.
    fn open_epochs(&mut self, out: &mut EngineOut) {
        while self.started < self.blocks.len() as u64 + self.depth && self.stop.allows(self.started)
        {
            // Membership gate: only committee members open an epoch, and
            // only once its key epoch's threshold keys exist (a running
            // resharing ceremony holds the activation epoch back; a
            // leaver stops here for good and finishes by sync adoption).
            if let Some(ctl) = &self.membership {
                if !ctl.can_open(self.started) {
                    break;
                }
            }
            if self.started > self.blocks.len() as u64 && !self.source.has_work() {
                break;
            }
            let next = self.started;
            self.begin_epoch(next, out);
        }
    }

    /// Starts decryption of proposer `j`'s delivered proposal; a malformed
    /// ciphertext from a Byzantine proposer counts as an empty contribution.
    fn activate_dec(
        crypto: &NodeCrypto,
        st: &mut EpochState<B, A>,
        j: usize,
        session: u64,
        out: &mut EngineOut,
    ) {
        if st.dec.active[j] {
            return;
        }
        let Some(bytes) = st.rbc.delivered(j) else { return };
        if let Some(ct) = decode_ciphertext(bytes) {
            let mut acts = Actions::new();
            st.dec.activate(j, ct, crypto, &mut acts);
            out.absorb(session, &mut acts);
        } else {
            st.dec.active[j] = true;
            st.dec.plaintexts[j] = Some(encode_batch(&[]).to_vec());
        }
    }

    /// Runs the epoch state machine after any component progress.
    fn poll(&mut self, epoch: u64, out: &mut EngineOut) {
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };
        // Quorum math of *this epoch's* committee (membership changes can
        // resize it between epochs; without membership these are the
        // engine-constant n and f).
        let n = self.epochs[idx].n;
        let quorum = 2 * self.epochs[idx].f + 1;

        // 1. Feed ABA inputs when 2f+1 RBCs delivered — all at once. At
        //    pipelined depths the agreement lane of a *future* epoch stays
        //    parked until the epoch reaches the chain head: its
        //    dissemination overlaps the head's agreement, but binding ABA
        //    inputs while proposals are still in flight behind pipelined
        //    traffic would vote 0 on slow instances and requeue whole
        //    batches.
        let at_head = self.epochs[idx].epoch == self.blocks.len() as u64;
        {
            let st = &mut self.epochs[idx];
            if !st.aba_inputs_sent
                && st.rbc.delivered_count() >= quorum
                && (self.depth == 1 || at_head)
            {
                st.aba_inputs_sent = true;
                let mut acts = Actions::new();
                for j in 0..n {
                    let input = st.rbc.delivered(j).is_some();
                    st.aba.set_input(j, input, &mut acts);
                }
                let session = sessions::of(epoch, sessions::ABA);
                out.absorb(session, &mut acts);
            }
        }
        // 1b. Early-commit fast path (pipelined depths only): once our ABA
        //     inputs are bound, n−f of them are unanimously 1, so start
        //     exchanging decryption shares for every delivered instance the
        //     ABAs have not rejected instead of waiting for the full
        //     accepted set to freeze. Commit still waits for stage 2's
        //     frozen set; shares for instances that end up rejected are
        //     simply never combined.
        if self.depth > 1 {
            let session = sessions::of(epoch, sessions::DEC);
            let crypto = Self::epoch_crypto(&self.crypto, &self.membership, epoch);
            let st = &mut self.epochs[idx];
            if st.aba_inputs_sent && st.accepted.is_none() {
                for j in 0..n {
                    if st.aba.decided(j) != Some(false) {
                        Self::activate_dec(crypto, st, j, session, out);
                    }
                }
            }
        }
        // 2. Freeze the accepted set when all ABAs decided.
        {
            let st = &mut self.epochs[idx];
            if st.accepted.is_none() && st.aba_inputs_sent && st.aba.decided_count() == n {
                let accepted: Vec<usize> =
                    (0..n).filter(|&j| st.aba.decided(j) == Some(true)).collect();
                st.accepted = Some(accepted);
            }
        }
        // 3. Activate decryption for accepted instances whose value we hold.
        {
            let session = sessions::of(epoch, sessions::DEC);
            let crypto = Self::epoch_crypto(&self.crypto, &self.membership, epoch);
            let st = &mut self.epochs[idx];
            if let Some(accepted) = st.accepted.clone() {
                for j in accepted {
                    Self::activate_dec(crypto, st, j, session, out);
                }
            }
        }
        // 4. Decide the epoch once every accepted proposal decrypted.
        {
            let st = &mut self.epochs[idx];
            if !st.committed && st.decided.is_none() {
                if let Some(accepted) = &st.accepted {
                    if st.dec.complete_for(accepted) {
                        let mut txs: Vec<Tx> = Vec::new();
                        for &j in accepted {
                            if let Some(pt) = &st.dec.plaintexts[j] {
                                if let Some(batch) = decode_batch(pt) {
                                    for tx in batch {
                                        if !txs.contains(&tx) {
                                            txs.push(tx);
                                        }
                                    }
                                }
                            }
                        }
                        st.decided = Some(Block { epoch, txs });
                    }
                }
            }
        }
        self.finalize_in_order(out);
    }

    /// Appends decided epochs to the chain strictly in epoch order — the
    /// committed digest chain stays a common prefix even when a later
    /// pipelined epoch decides before an earlier one — then refills the
    /// dissemination pipeline.
    fn finalize_in_order(&mut self, out: &mut EngineOut) {
        let mut advanced = false;
        loop {
            let next = self.blocks.len() as u64;
            let Some(i) = self.epochs.iter().position(|e| e.epoch == next) else { break };
            let Some(block) = self.epochs[i].decided.take() else { break };
            self.epochs[i].committed = true;
            // Service mode: resolve the commit in the mempool *before* the
            // next epoch pulls its batch, so a peer-committed transaction
            // cannot ride again.
            if let BatchSource::Service { handle, .. } = &self.source {
                handle.resolve_commit(&block);
            }
            self.blocks.push(block);
            self.on_membership_commit(next, out);
            advanced = true;
        }
        if advanced {
            self.open_epochs(out);
            // The next epoch just became the chain head: release its
            // parked agreement lane (no-op when it has no RBC quorum yet
            // or at depth 1, where the head is the only open epoch).
            let head = self.blocks.len() as u64;
            self.poll(head, out);
        }
    }

    /// Chain-commit hook of the membership subsystem: folds the epoch's
    /// ops into the committee log and, when a change lands, broadcasts
    /// this node's resharing deal (if it is a canonical dealer) on the
    /// activation epoch's reshare session, with a retransmission timer.
    fn on_membership_commit(&mut self, epoch: u64, out: &mut EngineOut) {
        let Some(ctl) = &mut self.membership else { return };
        let Some(block) = self.blocks.iter().find(|b| b.epoch == epoch) else { return };
        if ctl.on_commit(epoch, &block.txs).is_none() {
            return;
        }
        if let Some((activation, key_epoch, deal)) = ctl.make_my_deal(&mut self.rng) {
            let session = sessions::of(activation, sessions::RESHARE);
            out.sends.push((
                session,
                Body::Reshare { key_epoch, dealer: ctl.me_global(), deal },
            ));
            out.timers.push((session, TIMER_RESHARE_RETX, RESHARE_RETX_DELAY));
        }
    }

    /// Absorbs a dealer's reshare deal set. When the deal completes the
    /// ceremony, the new key epoch's bundle just became available and the
    /// epochs blocked on it can open.
    fn on_reshare(&mut self, from: usize, body: &Body, out: &mut EngineOut) {
        let Some(ctl) = &mut self.membership else { return };
        let Body::Reshare { key_epoch, dealer, deal } = body else { return };
        // The envelope signature authenticated `from`; a deal claiming a
        // different dealer identity is forged (or corrupt) — drop it.
        if *dealer as usize != from {
            return;
        }
        let Some(deal) = wbft_membership::DealSet::decode(deal) else { return };
        if deal.dealer != *dealer {
            return;
        }
        if ctl.absorb_deal(*key_epoch, deal) {
            self.open_epochs(out);
            let head = self.blocks.len() as u64;
            self.poll(head, out);
        }
    }
}

impl<B: Broadcaster, A: BinaryAgreement> Engine for HbEngine<B, A> {
    fn start(&mut self, out: &mut EngineOut) {
        self.open_epochs(out);
    }

    fn on_work_available(&mut self, out: &mut EngineOut) {
        // A fresh local submission: fill the pipeline window now instead
        // of waiting for the next commit. Sequential depth (W = 1) never
        // has window slack here, so this is a no-op for it.
        self.open_epochs(out);
    }

    fn restore_chain(&mut self, blocks: Vec<Block>) {
        // Adopt the recovered prefix as already-committed history; `start`
        // then opens the first live epoch right past it (epochs are opened
        // relative to `blocks.len()`, so no per-epoch state is needed).
        self.started = self.started.max(blocks.len() as u64);
        self.blocks = blocks;
        // Membership runs: refold the committee log from the restored
        // prefix. No deals can be broadcast from here (pre-start, nothing
        // to send through); a restart landing mid-ceremony relies on the
        // other dealers' retransmissions or anti-entropy adoption.
        for i in 0..self.blocks.len() {
            let Some(ctl) = &mut self.membership else { break };
            ctl.on_commit(self.blocks[i].epoch, &self.blocks[i].txs);
        }
    }

    fn adopt_chain(&mut self, blocks: Vec<Block>, out: &mut EngineOut) {
        let mut advanced = false;
        for block in blocks {
            if block.epoch != self.blocks.len() as u64 {
                continue;
            }
            // Drop the live instance of the adopted epoch: its agreement
            // is moot and its components must not commit a second copy.
            if let Some(i) = self.epochs.iter().position(|e| e.epoch == block.epoch) {
                self.epochs.remove(i);
            }
            if let BatchSource::Service { handle, .. } = &self.source {
                handle.resolve_commit(&block);
            }
            let epoch = block.epoch;
            self.blocks.push(block);
            self.on_membership_commit(epoch, out);
            advanced = true;
        }
        if advanced {
            self.started = self.started.max(self.blocks.len() as u64);
            self.open_epochs(out);
            let head = self.blocks.len() as u64;
            self.poll(head, out);
        }
    }

    fn handle(&mut self, session: u64, from: usize, body: &Body, out: &mut EngineOut) {
        let (epoch, role) = sessions::split(session);
        if role == sessions::RESHARE {
            self.on_reshare(from, body, out);
            return;
        }
        // Envelopes carry global node ids; components speak committee
        // slots. Without membership the two coincide.
        let from = match &self.membership {
            Some(ctl) => match ctl.slot_at(epoch, from as u16) {
                Some(slot) => slot,
                // Not a member of this epoch's committee (e.g. a leaver's
                // stale traffic): nothing a component could attribute.
                None => return,
            },
            None => from,
        };
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };
        let mut acts = Actions::new();
        {
            let crypto = Self::epoch_crypto(&self.crypto, &self.membership, epoch);
            let st = &mut self.epochs[idx];
            match role {
                sessions::BROADCAST => st.rbc.handle(from, body, &mut acts),
                sessions::ABA => st.aba.handle(from, body, &mut acts),
                sessions::DEC => st.dec.handle(from, body, crypto, &mut acts),
                _ => {}
            }
        }
        out.absorb(session, &mut acts);
        self.poll(epoch, out);
    }

    fn on_timer(&mut self, session: u64, local: u32, out: &mut EngineOut) {
        let (epoch, role) = sessions::split(session);
        if role == sessions::RESHARE {
            if local != TIMER_RESHARE_RETX || self.is_done() {
                return;
            }
            let Some(ctl) = &self.membership else { return };
            let Some((_, key_epoch, deal)) = ctl.retx_deal() else { return };
            out.sends.push((
                session,
                Body::Reshare { key_epoch, dealer: ctl.me_global(), deal },
            ));
            out.timers.push((session, TIMER_RESHARE_RETX, RESHARE_RETX_DELAY));
            return;
        }
        let Some(idx) = self.epochs.iter().position(|e| e.epoch == epoch) else { return };
        let mut acts = Actions::new();
        {
            let st = &mut self.epochs[idx];
            match role {
                sessions::BROADCAST => st.rbc.on_timer(local, &mut acts),
                sessions::ABA => st.aba.on_timer(local, &mut acts),
                sessions::DEC => {
                    let accepted = st.accepted.clone();
                    st.dec.on_timer(local, accepted.as_deref(), &mut acts)
                }
                _ => {}
            }
        }
        out.absorb(session, &mut acts);
        self.poll(epoch, out);
    }

    fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    fn key_epoch(&self, session: u64) -> u64 {
        match &self.membership {
            Some(ctl) => ctl.wire_key_epoch(session),
            None => 0,
        }
    }

    fn is_done(&self) -> bool {
        let committed = self.blocks.len() as u64;
        if self.stop.is_done(self.started, committed) {
            return true;
        }
        // Membership runs: a node outside the committee at its chain head
        // (a leaver past activation, a joiner before it) opens nothing
        // itself — it finishes by sync adoption once the chain it adopts
        // reaches the stop.
        self.membership
            .as_ref()
            .is_some_and(|ctl| !ctl.member_at(committed) && !self.stop.allows(committed))
    }
}

// ------------------------------------------------------------------
// Variant constructors.

/// Wireless HoneyBadgerBFT-SC: batched RBC + batched shared-coin ABA
/// (threshold signatures).
pub fn hb_sc(
    crypto: NodeCrypto,
    source: impl Into<BatchSource>,
    stop: StopCondition,
) -> HbEngine<RbcBatch, AbaScBatch> {
    HbEngine::new(
        crypto,
        source,
        stop,
        true,
        Box::new(RbcBatch::new),
        Box::new(|p, c: &NodeCrypto| {
            AbaScBatch::new_parallel(p, CoinFlavor::ThreshSig, c.coin_pub.clone(), c.coin_sec.clone())
        }),
    )
}

/// Wireless HoneyBadgerBFT-LC: batched RBC + batched local-coin (Bracha)
/// ABA.
pub fn hb_lc(
    crypto: NodeCrypto,
    source: impl Into<BatchSource>,
    stop: StopCondition,
) -> HbEngine<RbcBatch, AbaLcBatch> {
    HbEngine::new(
        crypto,
        source,
        stop,
        true,
        Box::new(RbcBatch::new),
        Box::new(|p, _: &NodeCrypto| AbaLcBatch::new(p)),
    )
}

/// Wireless BEAT (BEAT0): HoneyBadger structure with threshold
/// coin-flipping ABA.
pub fn beat(
    crypto: NodeCrypto,
    source: impl Into<BatchSource>,
    stop: StopCondition,
) -> HbEngine<RbcBatch, AbaScBatch> {
    HbEngine::new(
        crypto,
        source,
        stop,
        true,
        Box::new(RbcBatch::new),
        Box::new(|p, c: &NodeCrypto| {
            AbaScBatch::new_parallel(p, CoinFlavor::CoinFlip, c.coin_pub.clone(), c.coin_sec.clone())
        }),
    )
}

/// Unbatched HoneyBadgerBFT-SC baseline.
pub fn hb_sc_baseline(
    crypto: NodeCrypto,
    source: impl Into<BatchSource>,
    stop: StopCondition,
) -> HbEngine<BaselineRbcSet, BaselineAbaSet> {
    HbEngine::new(
        crypto,
        source,
        stop,
        false,
        Box::new(BaselineRbcSet::new),
        Box::new(|p, c: &NodeCrypto| {
            BaselineAbaSet::new(p, CoinFlavor::ThreshSig, c.coin_pub.clone(), c.coin_sec.clone())
        }),
    )
}

/// Unbatched BEAT baseline.
pub fn beat_baseline(
    crypto: NodeCrypto,
    source: impl Into<BatchSource>,
    stop: StopCondition,
) -> HbEngine<BaselineRbcSet, BaselineAbaSet> {
    HbEngine::new(
        crypto,
        source,
        stop,
        false,
        Box::new(BaselineRbcSet::new),
        Box::new(|p, c: &NodeCrypto| {
            BaselineAbaSet::new(p, CoinFlavor::CoinFlip, c.coin_pub.clone(), c.coin_sec.clone())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ProtocolNode;
    use rand::SeedableRng;
    use wbft_components::deal_node_crypto;
    use wbft_crypto::CryptoSuite;
    use wbft_wireless::{ChannelId, SimConfig, SimTime, Simulator, Topology};

    fn run_hb_sc(seed: u64, epochs: u64) -> Vec<Vec<Block>> {
        run_hb_sc_at_depth(seed, epochs, 1)
    }

    fn run_hb_sc_at_depth(seed: u64, epochs: u64, depth: u64) -> Vec<Vec<Block>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let workload = Workload::small();
        let behaviors: Vec<_> = crypto
            .into_iter()
            .map(|c| {
                let engine = hb_sc(c.clone(), workload.clone(), StopCondition::Epochs(epochs))
                    .with_depth(depth);
                ProtocolNode::new(engine, c, ChannelId(0))
            })
            .collect();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg, Topology::single_hop(4), behaviors);
        let ok = sim.run_until_pred(SimTime::from_micros(3_600_000_000), |s| {
            s.behaviors().all(|(_, b)| b.is_done())
        });
        assert!(ok, "HB-SC did not complete {epochs} epochs in simulated hour");
        sim.behaviors().map(|(_, b)| b.blocks().to_vec()).collect()
    }

    #[test]
    fn hb_sc_single_epoch_agreement() {
        let all_blocks = run_hb_sc(5, 1);
        let first = &all_blocks[0];
        assert_eq!(first.len(), 1);
        assert!(!first[0].txs.is_empty(), "block should carry transactions");
        for blocks in &all_blocks {
            assert_eq!(blocks, first, "all nodes must commit identical blocks");
        }
    }

    #[test]
    fn hb_sc_multi_epoch_progress() {
        let all_blocks = run_hb_sc(6, 2);
        for blocks in &all_blocks {
            assert_eq!(blocks.len(), 2);
            assert_eq!(blocks[0].epoch, 0);
            assert_eq!(blocks[1].epoch, 1);
            assert_ne!(blocks[0].txs, blocks[1].txs, "epochs carry fresh batches");
        }
        assert_eq!(all_blocks[0], all_blocks[3]);
    }

    #[test]
    fn hb_sc_pipelined_depths_agree_and_commit_in_order() {
        for depth in [2u64, 4] {
            let all_blocks = run_hb_sc_at_depth(6, 4, depth);
            let first = &all_blocks[0];
            assert_eq!(first.len(), 4, "depth {depth}: all epochs commit");
            for (e, b) in first.iter().enumerate() {
                assert_eq!(b.epoch, e as u64, "depth {depth}: chain is in epoch order");
            }
            for blocks in &all_blocks {
                assert_eq!(blocks, first, "depth {depth}: all nodes agree");
            }
        }
    }

    #[test]
    fn ciphertext_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (enc, _) = wbft_crypto::thresh_enc::deal_enc(
            4,
            1,
            wbft_crypto::ThresholdCurve::Bn158,
            &mut rng,
        );
        let ct = enc.encrypt(b"label", b"some payload", &mut rng);
        let enc_bytes = encode_ciphertext(&ct);
        assert_eq!(decode_ciphertext(&enc_bytes), Some(ct));
        assert_eq!(decode_ciphertext(&[0u8; 10]), None);
    }
}
