//! Restart-from-journal: the bridge between consensus [`Block`]s and the
//! durable [`wbft_journal`] chain, plus the digest arithmetic the
//! anti-entropy sync protocol verifies chunks against.
//!
//! A node's committed chain maps onto a journal one-to-one: block `e` (the
//! chain commits strictly in epoch order, so `epoch == index`) becomes
//! journal record `e` whose payload is the block's transaction batch in the
//! existing proposal codec ([`encode_batch`]). The cumulative journal chain
//! digest after record `e` therefore commits to every committed byte up to
//! and including epoch `e` — it is the digest the sync protocol ships with
//! each block and the digest restarted nodes compare against their peers.

use crate::driver::{Block, Tx};
use crate::workload::{decode_batch, encode_batch};
use wbft_journal::{chain_digest, Journal, JournalError, JournalStore, GENESIS_DIGEST};

/// Encodes a block's transactions as a journal record payload.
pub fn encode_block_payload(txs: &[Tx]) -> Vec<u8> {
    encode_batch(txs).to_vec()
}

/// Inverse of [`encode_block_payload`]. `None` on malformed bytes (journal
/// checksums make this unreachable for records we wrote, but recovery must
/// stay total).
pub fn decode_block_payload(payload: &[u8]) -> Option<Vec<Tx>> {
    decode_batch(payload)
}

/// The cumulative journal chain digest after each block of `blocks`,
/// starting from genesis. `digests[e]` is what the journal head would be
/// with exactly blocks `0..=e` committed — the value a sync chunk carries
/// per block and a restarted node verifies before adopting.
pub fn chain_digests(blocks: &[Block]) -> Vec<[u8; 32]> {
    let mut out = Vec::with_capacity(blocks.len());
    let mut head = GENESIS_DIGEST;
    for b in blocks {
        head = chain_digest(&head, b.epoch, &encode_block_payload(&b.txs));
        out.push(head);
    }
    out
}

/// A journal of committed blocks over any byte store: the durable write-side
/// used by nodes as they commit, and the recovery read-side used on restart.
pub struct BlockJournal {
    journal: Journal<Box<dyn JournalStore + Send>>,
}

impl BlockJournal {
    /// Opens a journal, returning the recovered committed-chain prefix. Torn
    /// tails are silently repaired by the journal layer; a checksum-valid
    /// record whose payload fails the batch codec means the store belongs to
    /// a different format and is a typed error, not a panic.
    ///
    /// # Errors
    ///
    /// I/O failures and digest-chain violations from [`Journal::open`], plus
    /// `ChainMismatch` for an undecodable batch payload.
    pub fn open(
        store: Box<dyn JournalStore + Send>,
    ) -> Result<(Self, Vec<Block>), JournalError> {
        let (journal, records) = Journal::open(store)?;
        let mut blocks = Vec::with_capacity(records.len());
        for r in records {
            let Some(txs) = decode_block_payload(&r.payload) else {
                return Err(JournalError::ChainMismatch { epoch: r.epoch });
            };
            blocks.push(Block { epoch: r.epoch, txs });
        }
        Ok((BlockJournal { journal }, blocks))
    }

    /// Appends one committed block; returns the new chain head.
    ///
    /// # Errors
    ///
    /// Store I/O failures, or `EpochGap` when `block.epoch` is not the next
    /// journal epoch (a driver bug, not a runtime condition).
    pub fn append(&mut self, block: &Block) -> Result<[u8; 32], JournalError> {
        self.journal.append(block.epoch, &encode_block_payload(&block.txs))
    }

    /// Cumulative chain digest after the last journaled block.
    pub fn head(&self) -> [u8; 32] {
        self.journal.head()
    }

    /// Number of journaled blocks (== the next expected epoch).
    pub fn len(&self) -> u64 {
        self.journal.len()
    }

    /// `true` when nothing has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use wbft_journal::SharedMem;

    fn block(epoch: u64, tags: &[u8]) -> Block {
        Block {
            epoch,
            txs: tags.iter().map(|&t| Bytes::from(vec![t; 16])).collect(),
        }
    }

    #[test]
    fn journal_round_trips_blocks_and_matches_chain_digests() {
        let store = SharedMem::new();
        let chain = vec![block(0, &[1, 2]), block(1, &[]), block(2, &[3])];
        {
            let (mut j, recovered) =
                BlockJournal::open(Box::new(store.clone())).unwrap();
            assert!(recovered.is_empty());
            let mut heads = Vec::new();
            for b in &chain {
                heads.push(j.append(b).unwrap());
            }
            assert_eq!(heads, chain_digests(&chain));
        }
        let (j, recovered) = BlockJournal::open(Box::new(store)).unwrap();
        assert_eq!(recovered, chain);
        assert_eq!(j.len(), 3);
        assert_eq!(j.head(), *chain_digests(&chain).last().unwrap());
    }

    #[test]
    fn payload_codec_round_trips_and_rejects_garbage() {
        let txs = vec![Bytes::from_static(b"abc"), Bytes::new()];
        let enc = encode_block_payload(&txs);
        assert_eq!(decode_block_payload(&enc), Some(txs));
        assert_eq!(decode_block_payload(&[0xff]), None);
    }

    #[test]
    fn empty_chain_has_no_digests() {
        assert!(chain_digests(&[]).is_empty());
    }
}
