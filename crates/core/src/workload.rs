//! Deterministic transaction workloads and batch serialization.
//!
//! The testbed measures throughput in committed transactions per minute
//! (TPM), so the workload layer both generates reproducible per-node
//! batches and defines the canonical batch encoding that travels inside
//! proposals (and, for HoneyBadger/BEAT, inside threshold ciphertexts).

use crate::driver::Tx;
use bytes::Bytes;
use wbft_crypto::hash::Digest32;

/// Deterministic per-node, per-epoch transaction source.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Transactions per proposal batch.
    pub batch_size: usize,
    /// Bytes per transaction.
    pub tx_bytes: usize,
    /// Workload seed (distinct seeds = distinct transactions).
    pub seed: u64,
}

impl Workload {
    /// A small default workload (8 × 16-byte transactions).
    pub fn small() -> Self {
        Workload { batch_size: 8, tx_bytes: 16, seed: 1 }
    }

    /// The batch node `me` proposes in `epoch`. Deterministic, and disjoint
    /// across nodes and epochs (each tx embeds its coordinates).
    pub fn batch(&self, epoch: u64, me: usize) -> Vec<Tx> {
        (0..self.batch_size)
            .map(|i| {
                let tag = Digest32::of_parts(
                    "wbft/workload/tx",
                    &[
                        &self.seed.to_le_bytes(),
                        &epoch.to_le_bytes(),
                        &(me as u64).to_le_bytes(),
                        &(i as u64).to_le_bytes(),
                    ],
                );
                let mut tx = Vec::with_capacity(self.tx_bytes);
                while tx.len() < self.tx_bytes {
                    let take = (self.tx_bytes - tx.len()).min(32);
                    tx.extend_from_slice(&tag.as_bytes()[..take]);
                }
                Bytes::from(tx)
            })
            .collect()
    }
}

/// Where an engine's per-epoch proposals come from: a synthetic workload,
/// fixed externally-supplied content (the multi-hop global tier proposes
/// cluster-block summaries, not generated transactions), or a live
/// client-fed mempool (the service API).
#[derive(Clone, Debug)]
pub enum BatchSource {
    /// Deterministic synthetic transactions.
    Workload(Workload),
    /// A fixed single-proposal payload per epoch, set via
    /// [`BatchSource::set_fixed`]; epochs without one propose empty batches.
    Fixed(Vec<Option<Tx>>),
    /// Live proposals pulled FIFO from a bounded client mempool (see
    /// [`crate::service`]); epochs finding the pool empty propose empty
    /// batches and keep the pipeline turning.
    Service {
        /// The shared service handle whose mempool feeds proposals.
        handle: crate::service::ConsensusHandle,
        /// Most transactions pulled into one proposal.
        max_batch: usize,
    },
}

impl BatchSource {
    /// The batch to propose in `epoch`.
    pub fn batch(&self, epoch: u64, me: usize) -> Vec<Tx> {
        match self {
            BatchSource::Workload(w) => w.batch(epoch, me),
            BatchSource::Fixed(slots) => slots
                .get(epoch as usize)
                .and_then(|t| t.clone())
                .map(|t| vec![t])
                .unwrap_or_default(),
            BatchSource::Service { handle, max_batch } => handle.next_batch(epoch, *max_batch),
        }
    }

    /// Whether the source has transactions worth a new epoch right now.
    /// Synthetic and fixed sources always do (their content is a function
    /// of the epoch number); a live mempool only when transactions are
    /// queued — pipelined engines use this to avoid burning a whole
    /// epoch's airtime on an empty proposal.
    pub fn has_work(&self) -> bool {
        match self {
            BatchSource::Workload(_) | BatchSource::Fixed(_) => true,
            BatchSource::Service { handle, .. } => handle.has_pending(),
        }
    }

    /// Installs the fixed proposal for an epoch.
    pub fn set_fixed(&mut self, epoch: u64, tx: Tx) {
        if let BatchSource::Fixed(slots) = self {
            while slots.len() <= epoch as usize {
                slots.push(None);
            }
            slots[epoch as usize] = Some(tx);
        }
    }
}

impl From<Workload> for BatchSource {
    fn from(w: Workload) -> Self {
        BatchSource::Workload(w)
    }
}

/// Serializes a batch: `u32` count, then `u16`-length-prefixed transactions.
pub fn encode_batch(txs: &[Tx]) -> Bytes {
    let mut out = Vec::new();
    out.extend_from_slice(&(txs.len() as u32).to_le_bytes());
    for tx in txs {
        out.extend_from_slice(&(tx.len() as u16).to_le_bytes());
        out.extend_from_slice(tx);
    }
    Bytes::from(out)
}

/// Inverse of [`encode_batch`]. Returns `None` on malformed input
/// (a Byzantine proposer's garbage decrypts to garbage).
pub fn decode_batch(data: &[u8]) -> Option<Vec<Tx>> {
    if data.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
    if count > 100_000 {
        return None;
    }
    let mut txs = Vec::with_capacity(count);
    let mut pos = 4;
    for _ in 0..count {
        if data.len() < pos + 2 {
            return None;
        }
        let len = u16::from_le_bytes(data[pos..pos + 2].try_into().ok()?) as usize;
        pos += 2;
        if data.len() < pos + len {
            return None;
        }
        txs.push(Bytes::copy_from_slice(&data[pos..pos + len]));
        pos += len;
    }
    if pos != data.len() {
        return None;
    }
    Some(txs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let w = Workload { batch_size: 4, tx_bytes: 24, seed: 7 };
        assert_eq!(w.batch(0, 1), w.batch(0, 1));
        assert_ne!(w.batch(0, 1), w.batch(0, 2));
        assert_ne!(w.batch(0, 1), w.batch(1, 1));
        assert!(w.batch(0, 0).iter().all(|tx| tx.len() == 24));
    }

    #[test]
    fn batch_roundtrip() {
        let w = Workload::small();
        let txs = w.batch(3, 2);
        let enc = encode_batch(&txs);
        assert_eq!(decode_batch(&enc), Some(txs));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let enc = encode_batch(&[]);
        assert_eq!(decode_batch(&enc), Some(vec![]));
    }

    #[test]
    fn malformed_batches_rejected() {
        assert_eq!(decode_batch(&[]), None);
        assert_eq!(decode_batch(&[1, 0, 0, 0]), None); // count 1, no tx
        let mut enc = encode_batch(&Workload::small().batch(0, 0)).to_vec();
        enc.push(0); // trailing byte
        assert_eq!(decode_batch(&enc), None);
    }
}
