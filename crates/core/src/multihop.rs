//! Clustered multi-hop deployment (paper §V-B, Fig. 8).
//!
//! The network is divided into M single-hop clusters, each on its own radio
//! channel; consensus is two-phase, akin to blockchain sharding: *local*
//! consensus runs in parallel inside every cluster, then a rotating cluster
//! leader carries the cluster's decision onto a shared *global* channel — a
//! routed overlay among leaders — where a second consensus instance (among
//! M participants) orders all clusters' proposals. Leaders rotate every
//! epoch ("changeable cluster leader"), which bounds the damage of a
//! Byzantine leader; followers learn the global outcome from the leader's
//! announcement frame on the cluster channel.

use crate::driver::{sessions, Block, Engine, EngineOut};
use crate::honeybadger::{hb_sc, HbEngine};
use crate::protocol::Protocol;
use crate::service::StopCondition;
use crate::workload::{BatchSource, Workload};
use bytes::Bytes;
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::rbc::RbcBatch;
use wbft_components::NodeCrypto;
use wbft_crypto::hash::Digest32;
use wbft_net::{Body, Envelope, Sizing};
use wbft_wireless::{ChannelId, Frame, NodeBehavior, NodeCtx, SimDuration, SimTime};

/// Encodes a cluster's global proposal: `(cluster, epoch, digest, txs)`.
fn encode_summary(cluster: usize, epoch: u64, digest: Digest32, tx_count: u32) -> Bytes {
    let mut out = Vec::with_capacity(48);
    out.push(cluster as u8);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(digest.as_bytes());
    out.extend_from_slice(&tx_count.to_le_bytes());
    Bytes::from(out)
}

/// Decodes a global proposal summary.
pub fn decode_summary(data: &[u8]) -> Option<(usize, u64, Digest32, u32)> {
    if data.len() != 45 {
        return None;
    }
    let cluster = data[0] as usize;
    let epoch = u64::from_le_bytes(data[1..9].try_into().ok()?);
    let digest = Digest32(data[9..41].try_into().ok()?);
    let tx_count = u32::from_le_bytes(data[41..45].try_into().ok()?);
    Some((cluster, epoch, digest, tx_count))
}

/// Digest of a block (for summaries and announcements).
fn block_digest(block: &Block) -> Digest32 {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(block.txs.len());
    for tx in &block.txs {
        parts.push(tx);
    }
    Digest32::of_parts("wbft/multihop/block", &parts)
}

/// One node of a clustered deployment: local consensus member, sometimes
/// global-tier leader.
pub struct ClusterNode {
    /// This node's cluster index.
    cluster: usize,
    /// Index within the cluster (0-based).
    member: usize,
    /// Members per cluster.
    per_cluster: usize,
    /// Target epochs.
    target_epochs: u64,
    /// Local consensus engine + identity.
    local: Box<dyn Engine>,
    local_crypto: NodeCrypto,
    local_sizing: Sizing,
    local_channel: ChannelId,
    /// Global tier (engine created lazily per epoch when on duty).
    global_crypto: NodeCrypto,
    global_sizing: Sizing,
    global_channel: ChannelId,
    global: Option<HbEngine<RbcBatch, AbaScBatch>>,
    global_epoch: Option<u64>,
    joined_global: bool,
    /// Epochs whose global outcome this node knows, with tx counts.
    pub global_decisions: Vec<(u64, Digest32, u32)>,
    /// Completion times of global decisions (the multi-hop latency metric).
    pub decided_at: Vec<SimTime>,
    announced: Vec<u64>,
}

/// Bit 63 of a timer id marks the global lane.
const GLOBAL_TIMER_BIT: u64 = 1 << 63;
/// Dedicated timer re-announcing known global decisions on the cluster
/// channel (an announcement lost to a collision must not strand followers).
const TIMER_ANNOUNCE: u64 = 1 << 62;
const TIMER_LOCAL_BITS: u64 = 10;

impl ClusterNode {
    /// Builds one node.
    ///
    /// `local_crypto` is dealt among the cluster's members; `global_crypto`
    /// among the M clusters (every member holds its cluster's share and
    /// uses it only while leader — the key custody question is out of the
    /// paper's scope).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cluster: usize,
        member: usize,
        per_cluster: usize,
        protocol: Protocol,
        workload: Workload,
        target_epochs: u64,
        local_crypto: NodeCrypto,
        global_crypto: NodeCrypto,
    ) -> Self {
        let local = protocol.engine(local_crypto.clone(), workload, target_epochs);
        let local_sizing = Sizing { n: per_cluster, suite: local_crypto.suite };
        let global_sizing =
            Sizing { n: global_crypto.peer_keys.len(), suite: global_crypto.suite };
        ClusterNode {
            cluster,
            member,
            per_cluster,
            target_epochs,
            local,
            local_crypto,
            local_sizing,
            local_channel: ChannelId(cluster as u8 + 1),
            global_crypto,
            global_sizing,
            global_channel: ChannelId(0),
            global: None,
            global_epoch: None,
            joined_global: false,
            global_decisions: Vec::new(),
            decided_at: Vec::new(),
            announced: Vec::new(),
        }
    }

    /// The rotating leader of `epoch` within a cluster.
    pub fn leader_for(epoch: u64, per_cluster: usize) -> usize {
        (epoch % per_cluster as u64) as usize
    }

    fn is_leader(&self, epoch: u64) -> bool {
        Self::leader_for(epoch, self.per_cluster) == self.member
    }

    /// `true` once all epochs are locally decided *and* globally known.
    pub fn is_done(&self) -> bool {
        self.local.blocks().len() as u64 >= self.target_epochs
            && self.global_decisions.len() as u64 >= self.target_epochs
    }

    /// Total transactions this node saw globally ordered.
    pub fn global_tx_total(&self) -> u64 {
        self.global_decisions.iter().map(|(_, _, c)| *c as u64).sum()
    }

    /// Session-id stride separating successive global instances: every
    /// per-epoch global engine numbers its sessions from zero, so the lane
    /// shifts them by `(epoch + 1) · STRIDE` on the wire. Stale frames and
    /// timers from a superseded instance then simply fail to match.
    const GLOBAL_STRIDE: u64 = 1 << 20;

    fn global_offset(&self) -> u64 {
        (self.global_epoch.map(|e| e + 1).unwrap_or(0)) * Self::GLOBAL_STRIDE
    }

    fn emit(
        &self,
        out: &mut EngineOut,
        global: bool,
        ctx: &mut NodeCtx,
    ) {
        let (crypto, sizing, channel, offset) = if global {
            (&self.global_crypto, &self.global_sizing, self.global_channel, self.global_offset())
        } else {
            (&self.local_crypto, &self.local_sizing, self.local_channel, 0)
        };
        if out.charge_us > 0 {
            ctx.charge_cpu(SimDuration::from_micros(out.charge_us));
        }
        let sign_cost = crypto.suite.ecdsa.profile().sign_us;
        for (session, body) in &out.sends {
            let session = *session + offset;
            let env = Envelope { src: crypto.me as u16, session, body: body.clone() };
            ctx.charge_cpu(SimDuration::from_micros(sign_cost));
            let Ok((bytes, nominal)) = env.seal(&crypto.keypair, sizing) else {
                continue;
            };
            let slot =
                session.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(env.body.slot_key());
            ctx.broadcast_slot(channel, bytes, nominal, slot);
        }
        for (session, local, delay) in &out.timers {
            let mut id = ((*session + offset) << TIMER_LOCAL_BITS) | *local as u64;
            if global {
                id |= GLOBAL_TIMER_BIT;
            }
            ctx.set_timer(*delay, id);
        }
    }

    /// Drives cross-tier transitions after any progress.
    fn advance(&mut self, ctx: &mut NodeCtx) {
        // 1. Newly decided local blocks: if on duty, open the global tier.
        let local_blocks = self.local.blocks().to_vec();
        for block in &local_blocks {
            let epoch = block.epoch;
            if self.is_leader(epoch)
                && self.global_epoch.map(|e| e < epoch).unwrap_or(true)
                && !self.global_decisions.iter().any(|(e, _, _)| *e == epoch)
            {
                // Join the overlay and start the global instance for this
                // epoch with our cluster's summary as the fixed proposal.
                if !self.joined_global {
                    self.joined_global = true;
                    ctx.join_channel(self.global_channel);
                }
                let summary = encode_summary(
                    self.cluster,
                    epoch,
                    block_digest(block),
                    block.txs.len() as u32,
                );
                let mut source = BatchSource::Fixed(Vec::new());
                source.set_fixed(0, summary);
                // The global instance runs one epoch; sessions are offset by
                // GLOBAL_BASE via the session ids the engine derives — we
                // remap through the lane instead (see `emit`).
                let mut engine =
                    hb_sc(self.global_crypto.clone(), source, StopCondition::Epochs(1));
                let mut out = EngineOut::new();
                engine.start(&mut out);
                self.global = Some(engine);
                self.global_epoch = Some(epoch);
                self.emit(&mut out, true, ctx);
            }
        }
        // 2. Global decision reached while on duty: tally + announce.
        let mut announce: Option<(u64, Digest32, u32)> = None;
        if let (Some(engine), Some(epoch)) = (&self.global, self.global_epoch) {
            if let Some(block) = engine.blocks().first() {
                if !self.global_decisions.iter().any(|(e, _, _)| *e == epoch) {
                    let digest = block_digest(block);
                    let tx_count: u32 = block
                        .txs
                        .iter()
                        .filter_map(|tx| decode_summary(tx))
                        .map(|(_, _, _, c)| c)
                        .sum();
                    self.global_decisions.push((epoch, digest, tx_count));
                    self.decided_at.push(ctx.now());
                    announce = Some((epoch, digest, tx_count));
                }
            }
        }
        if let Some((epoch, digest, tx_count)) = announce {
            if !self.announced.contains(&epoch) {
                self.announced.push(epoch);
                self.broadcast_announcement(epoch, digest, tx_count, ctx);
            }
        }
    }

    fn broadcast_announcement(
        &self,
        epoch: u64,
        digest: Digest32,
        tx_count: u32,
        ctx: &mut NodeCtx,
    ) {
        let body = Body::GlobalDecision { epoch, digest, tx_count };
        let env = Envelope {
            src: self.local_crypto.me as u16,
            session: sessions::of(epoch, 7),
            body,
        };
        ctx.charge_cpu(SimDuration::from_micros(
            self.local_crypto.suite.ecdsa.profile().sign_us,
        ));
        let Ok((bytes, nominal)) = env.seal(&self.local_crypto.keypair, &self.local_sizing)
        else {
            return;
        };
        let slot = 0xeeee_0000u64 | epoch;
        ctx.broadcast_slot(self.local_channel, bytes, nominal, slot);
    }
}

impl NodeBehavior for ClusterNode {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        let mut out = EngineOut::new();
        self.local.start(&mut out);
        self.emit(&mut out, false, ctx);
        ctx.set_timer(SimDuration::from_millis(3_500), TIMER_ANNOUNCE);
        self.advance(ctx);
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeCtx) {
        ctx.charge_cpu(SimDuration::from_micros(
            self.local_crypto.suite.ecdsa.profile().verify_us,
        ));
        let global = frame.channel == self.global_channel;
        let keys = if global {
            &self.global_crypto.peer_keys
        } else {
            &self.local_crypto.peer_keys
        };
        let Ok((env, sig_ok)) = Envelope::open(&frame.payload, |src| {
            keys.get(src as usize).copied()
        }) else {
            return;
        };
        if !sig_ok {
            return;
        }
        if global {
            let offset = self.global_offset();
            if env.session >= offset && env.session < offset + Self::GLOBAL_STRIDE {
                if let Some(engine) = &mut self.global {
                    let mut out = EngineOut::new();
                    engine.handle(env.session - offset, env.src as usize, &env.body, &mut out);
                    self.emit(&mut out, true, ctx);
                }
            } // else: stale instance — drop
        } else if let Body::GlobalDecision { epoch, digest, tx_count } = env.body {
            // Leader's announcement of the global outcome.
            let leader = Self::leader_for(epoch, self.per_cluster);
            if env.src as usize == leader
                && !self.global_decisions.iter().any(|(e, _, _)| *e == epoch)
            {
                self.global_decisions.push((epoch, digest, tx_count));
                self.decided_at.push(ctx.now());
            }
        } else {
            let mut out = EngineOut::new();
            self.local.handle(env.session, env.src as usize, &env.body, &mut out);
            self.emit(&mut out, false, ctx);
        }
        self.advance(ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
        if id == TIMER_ANNOUNCE {
            // Leaders re-broadcast every global decision they produced until
            // the deployment completes; slot replacement keeps at most one
            // announcement per epoch in the radio queue.
            for k in 0..self.announced.len() {
                let epoch = self.announced[k];
                if let Some((_, digest, tx_count)) =
                    self.global_decisions.iter().find(|(e, _, _)| *e == epoch).copied()
                {
                    self.broadcast_announcement(epoch, digest, tx_count, ctx);
                }
            }
            // Re-arm unconditionally: the leader cannot know whether every
            // follower has heard (announcements are fire-and-forget), so it
            // keeps serving them; slot replacement bounds the cost to one
            // queued frame.
            ctx.set_timer(SimDuration::from_millis(3_500), TIMER_ANNOUNCE);
            self.advance(ctx);
            return;
        }
        let global = id & GLOBAL_TIMER_BIT != 0;
        let id = id & !GLOBAL_TIMER_BIT;
        let session = id >> TIMER_LOCAL_BITS;
        let local = (id & ((1 << TIMER_LOCAL_BITS) - 1)) as u32;
        let mut out = EngineOut::new();
        if global {
            let offset = self.global_offset();
            if session >= offset && session < offset + Self::GLOBAL_STRIDE {
                if let Some(engine) = &mut self.global {
                    engine.on_timer(session - offset, local, &mut out);
                }
            }
            self.emit(&mut out, true, ctx);
        } else {
            self.local.on_timer(session, local, &mut out);
            self.emit(&mut out, false, ctx);
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_roundtrip() {
        let d = Digest32::of(b"block");
        let enc = encode_summary(2, 9, d, 384);
        assert_eq!(decode_summary(&enc), Some((2, 9, d, 384)));
        assert_eq!(decode_summary(&enc[..10]), None);
    }

    #[test]
    fn leader_rotates() {
        assert_eq!(ClusterNode::leader_for(0, 4), 0);
        assert_eq!(ClusterNode::leader_for(1, 4), 1);
        assert_eq!(ClusterNode::leader_for(4, 4), 0);
    }

    #[test]
    fn block_digest_depends_on_content() {
        let a = Block { epoch: 0, txs: vec![Bytes::from_static(b"x")] };
        let b = Block { epoch: 0, txs: vec![Bytes::from_static(b"y")] };
        assert_ne!(block_digest(&a), block_digest(&b));
    }
}
