//! Byzantine node behaviours (adversary model §III-A2).
//!
//! A Byzantine node is an honest engine behind a corrupting wrapper: it can
//! fall silent, crash after some epoch, flip every binary vote it sends, or
//! equivocate on its proposals. Wrapping (rather than reimplementing)
//! matches the threat model — the adversary controls a *node*, and the
//! protocol must survive whatever that node transmits.

use crate::driver::{Block, Engine, EngineOut};
use wbft_net::packets::{AbaLcInst, AbaScInst};
use wbft_net::{BinValues, Body, Vote};

/// The corruption applied to a wrapped engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ByzantineMode {
    /// Sends nothing at all (fail-silent from the start).
    Silent,
    /// Behaves honestly until `after_epoch` blocks are decided, then stops
    /// transmitting (crash fault).
    Crash {
        /// Blocks decided before the crash.
        after_epoch: u64,
    },
    /// Flips every binary vote (ABA bval/aux/decided, RBC-small values) in
    /// outgoing packets.
    FlipVotes,
    /// Replaces every outgoing proposal payload with garbage of the same
    /// length (equivocation-style value corruption; votes stay honest).
    CorruptProposals,
}

impl ByzantineMode {
    /// One representative of every corruption mode, for test matrices.
    /// `Crash` crashes after the first decided block, so runs exercising it
    /// need at least two epochs for the crash to bite mid-run.
    pub const ALL: [ByzantineMode; 4] = [
        ByzantineMode::Silent,
        ByzantineMode::Crash { after_epoch: 1 },
        ByzantineMode::FlipVotes,
        ByzantineMode::CorruptProposals,
    ];

    /// Short identifier for labels and report file names.
    pub fn slug(&self) -> String {
        match self {
            ByzantineMode::Silent => "silent".into(),
            ByzantineMode::Crash { after_epoch } => format!("crash{after_epoch}"),
            ByzantineMode::FlipVotes => "flip".into(),
            ByzantineMode::CorruptProposals => "corrupt".into(),
        }
    }
}

/// An engine under Byzantine control.
pub struct ByzantineEngine<E> {
    inner: E,
    mode: ByzantineMode,
}

impl<E: Engine> ByzantineEngine<E> {
    /// Wraps an engine.
    pub fn new(inner: E, mode: ByzantineMode) -> Self {
        ByzantineEngine { inner, mode }
    }

    fn crashed(&self) -> bool {
        match self.mode {
            ByzantineMode::Silent => true,
            ByzantineMode::Crash { after_epoch } => {
                self.inner.blocks().len() as u64 >= after_epoch
            }
            _ => false,
        }
    }

    fn corrupt(&self, out: &mut EngineOut) {
        if self.crashed() {
            out.sends.clear();
            return;
        }
        match self.mode {
            ByzantineMode::FlipVotes => {
                for (_, body) in out.sends.iter_mut() {
                    flip_votes(body);
                }
            }
            ByzantineMode::CorruptProposals => {
                for (_, body) in out.sends.iter_mut() {
                    corrupt_proposal(body);
                }
            }
            _ => {}
        }
    }
}

fn flip_vote(v: &mut Vote) {
    *v = match *v {
        Vote::Zero => Vote::One,
        Vote::One => Vote::Zero,
        other => other,
    };
}

fn flip_votes(body: &mut Body) {
    match body {
        Body::AbaSc { insts, .. } => {
            for AbaScInst { bval, aux, decided, .. } in insts {
                *bval = BinValues { zero: bval.one, one: bval.zero };
                flip_vote(aux);
                flip_vote(decided);
            }
        }
        Body::AbaLc { insts } => {
            for AbaLcInst { reports, decided, .. } in insts {
                for phase in reports {
                    for v in phase {
                        flip_vote(v);
                    }
                }
                flip_vote(decided);
            }
        }
        Body::RbcSmall { values, .. } => {
            for v in values {
                flip_vote(v);
            }
        }
        Body::BaseAbaBval { value, .. }
        | Body::BaseAbaAux { value, .. }
        | Body::BaseAbaDecided { value, .. } => *value = !*value,
        _ => {}
    }
}

fn corrupt_proposal(body: &mut Body) {
    match body {
        Body::RbcInit { data, .. }
        | Body::CbcInit { data, .. }
        | Body::BaseRbcInit { data, .. } => {
            let garbage: Vec<u8> = data.iter().map(|b| b ^ 0xA5).collect();
            *data = bytes::Bytes::from(garbage);
        }
        _ => {}
    }
}

impl<E: Engine> Engine for ByzantineEngine<E> {
    fn start(&mut self, out: &mut EngineOut) {
        self.inner.start(out);
        self.corrupt(out);
    }

    fn handle(&mut self, session: u64, from: usize, body: &Body, out: &mut EngineOut) {
        self.inner.handle(session, from, body, out);
        self.corrupt(out);
    }

    fn on_timer(&mut self, session: u64, local: u32, out: &mut EngineOut) {
        self.inner.on_timer(session, local, out);
        self.corrupt(out);
    }

    fn restore_chain(&mut self, blocks: Vec<Block>) {
        self.inner.restore_chain(blocks);
    }

    fn adopt_chain(&mut self, blocks: Vec<Block>, out: &mut EngineOut) {
        self.inner.adopt_chain(blocks, out);
        self.corrupt(out);
    }

    fn blocks(&self) -> &[Block] {
        self.inner.blocks()
    }

    fn key_epoch(&self, session: u64) -> u64 {
        // The wrapper corrupts payloads, not the node's signing identity;
        // the inner engine's key-epoch tag stays authoritative.
        self.inner.key_epoch(session)
    }

    fn is_done(&self) -> bool {
        // A Byzantine node never gates experiment completion.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        blocks: Vec<Block>,
    }
    impl Engine for Dummy {
        fn start(&mut self, out: &mut EngineOut) {
            out.sends.push((1, Body::BaseAbaBval { instance: 0, round: 0, value: true }));
        }
        fn handle(&mut self, _s: u64, _f: usize, _b: &Body, out: &mut EngineOut) {
            out.sends.push((1, Body::BaseAbaAux { instance: 0, round: 0, value: false }));
        }
        fn on_timer(&mut self, _s: u64, _l: u32, _o: &mut EngineOut) {}
        fn blocks(&self) -> &[Block] {
            &self.blocks
        }
        fn is_done(&self) -> bool {
            !self.blocks.is_empty()
        }
    }

    #[test]
    fn silent_drops_everything() {
        let mut e = ByzantineEngine::new(Dummy { blocks: vec![] }, ByzantineMode::Silent);
        let mut out = EngineOut::new();
        e.start(&mut out);
        assert!(out.sends.is_empty());
    }

    #[test]
    fn flip_votes_inverts_binary_fields() {
        let mut e = ByzantineEngine::new(Dummy { blocks: vec![] }, ByzantineMode::FlipVotes);
        let mut out = EngineOut::new();
        e.start(&mut out);
        assert!(matches!(out.sends[0].1, Body::BaseAbaBval { value: false, .. }));
        let mut out = EngineOut::new();
        e.handle(1, 0, &Body::BaseAbaDecided { instance: 0, value: true }, &mut out);
        assert!(matches!(out.sends[0].1, Body::BaseAbaAux { value: true, .. }));
    }

    #[test]
    fn crash_stops_after_threshold() {
        let block = Block { epoch: 0, txs: vec![] };
        let mut e = ByzantineEngine::new(
            Dummy { blocks: vec![block] },
            ByzantineMode::Crash { after_epoch: 1 },
        );
        let mut out = EngineOut::new();
        e.start(&mut out);
        assert!(out.sends.is_empty(), "already crashed: one block decided");
    }

    #[test]
    fn corrupt_proposals_keeps_length() {
        let mut body = Body::BaseRbcInit {
            instance: 0,
            frag: 0,
            frag_total: 1,
            root: wbft_crypto::Digest32::of(b"x"),
            data: bytes::Bytes::from_static(b"hello"),
        };
        corrupt_proposal(&mut body);
        match body {
            Body::BaseRbcInit { data, .. } => {
                assert_eq!(data.len(), 5);
                assert_ne!(&data[..], b"hello");
            }
            _ => unreachable!(),
        }
    }
}
