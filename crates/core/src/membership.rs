//! Engine-side dynamic-membership controller.
//!
//! [`MembershipCtl`] is the piece that connects the chain-pure
//! `wbft-membership` crate to a live engine: it holds the node's
//! [`CommitteeLog`] (folded from the committed chain), the membership ops
//! this node wants committed (injected into every proposal batch until
//! they land), the in-flight [`ReshareCeremony`] between a change's commit
//! and its activation, and one [`NodeCrypto`] bundle per key epoch. The
//! engine consults it at every epoch boundary for the quorum math
//! (`n`, `f`, this node's committee slot) and the threshold keys in
//! effect.
//!
//! Everything here is a deterministic function of the chain prefix plus
//! the verified deal sets — two honest nodes with the same inputs hold
//! byte-identical committee state, which is what keeps churn-free runs
//! byte-identical to builds without this module (the controller is simply
//! absent: `HbEngine.membership = None`).

use crate::driver::{sessions, Tx};
use bytes::Bytes;
use rand::RngCore;
use wbft_components::NodeCrypto;
use wbft_membership::{
    decode_op, encode_op, CommitteeConfig, CommitteeLog, DealSet, MembershipOp, ReshareCeremony,
};

/// A change committed: what the engine must do next (broadcast its deal if
/// it is a canonical dealer, retransmit until the chain passes
/// activation).
#[derive(Clone, Debug)]
pub struct CeremonyKickoff {
    /// First epoch the new configuration runs.
    pub activation_epoch: u64,
    /// Key epoch the ceremony establishes.
    pub key_epoch: u64,
}

struct LiveCeremony {
    activation_epoch: u64,
    ceremony: ReshareCeremony,
}

/// Per-node membership state machine (see module docs).
pub struct MembershipCtl {
    log: CommitteeLog,
    me_global: u16,
    /// Ops this node proposes, with the epoch from which to inject them;
    /// removed when observed committed.
    pending_ops: Vec<(u64, MembershipOp)>,
    ceremony: Option<LiveCeremony>,
    /// `crypto[k]` = this node's bundle for key epoch `k`; `None` while
    /// the ceremony is incomplete or when the node is not a member of that
    /// key epoch's committee (a leaver keeps only its older bundles).
    crypto: Vec<Option<NodeCrypto>>,
    /// Deal sets that arrived before the commit that starts their
    /// ceremony (RESHARE traffic can outrun chain adoption on a lagging
    /// node): `(target key epoch, deal)`.
    early_deals: Vec<(u64, DealSet)>,
    /// This node's own deal, kept for retransmission:
    /// `(activation epoch, target key epoch, encoded deal)`.
    my_deal: Option<(u64, u64, Bytes)>,
}

impl MembershipCtl {
    /// A controller for a node with global id `genesis.me`, rooted at the
    /// genesis committee `0..genesis_n`. Joiners pass a bundle holding the
    /// genesis *public* sets (their secret shares are placeholders that
    /// are never used: a joiner is not a member of key epoch 0).
    pub fn new(genesis: NodeCrypto, genesis_n: usize) -> Self {
        let me_global = genesis.me as u16;
        MembershipCtl {
            log: CommitteeLog::new(genesis_n),
            me_global,
            pending_ops: Vec::new(),
            ceremony: None,
            crypto: vec![Some(genesis)],
            early_deals: Vec::new(),
            my_deal: None,
        }
    }

    /// This node's global id.
    pub fn me_global(&self) -> u16 {
        self.me_global
    }

    /// The chain-derived committee log.
    pub fn log(&self) -> &CommitteeLog {
        &self.log
    }

    /// Queues `op` for injection into every proposal batch from
    /// `from_epoch` on, until it is observed committed.
    pub fn schedule_op(&mut self, from_epoch: u64, op: MembershipOp) {
        self.pending_ops.push((from_epoch, op));
    }

    /// The encoded membership ops to append to the proposal batch of
    /// `epoch` (deterministic order: schedule order).
    pub fn injectable(&self, epoch: u64) -> Vec<Tx> {
        self.pending_ops
            .iter()
            .filter(|(from, _)| *from <= epoch)
            .map(|(_, op)| encode_op(*op))
            .collect()
    }

    /// `true` iff this node sits in the committee in effect at `epoch`.
    pub fn member_at(&self, epoch: u64) -> bool {
        self.log.config_at(epoch).contains(self.me_global)
    }

    /// The committee parameters of `epoch` for this node: `(n, f, slot)`,
    /// `None` when it is not a member.
    pub fn committee_at(&self, epoch: u64) -> Option<(usize, usize, usize)> {
        let cfg = self.log.config_at(epoch);
        let slot = cfg.slot_of(self.me_global)?;
        Some((cfg.n(), cfg.f(), slot))
    }

    /// The committee slot of global id `from` at `epoch` (packet envelopes
    /// carry global ids; components speak slots).
    pub fn slot_at(&self, epoch: u64, from: u16) -> Option<usize> {
        self.log.config_at(epoch).slot_of(from)
    }

    /// This node's threshold-key bundle for the key epoch in effect at
    /// `epoch`; `None` while the resharing ceremony is still running (the
    /// engine must not open the epoch yet) or when the node is no member.
    pub fn crypto_at(&self, epoch: u64) -> Option<&NodeCrypto> {
        let k = self.log.config_at(epoch).key_epoch as usize;
        self.crypto.get(k)?.as_ref()
    }

    /// May the engine open `epoch`? Requires membership *and* the epoch's
    /// threshold keys (a ceremony still collecting deals holds the epoch
    /// back — the pre-activation epochs under the old keys keep running).
    pub fn can_open(&self, epoch: u64) -> bool {
        self.committee_at(epoch).is_some() && self.crypto_at(epoch).is_some()
    }

    /// The key-epoch wire tag for `session`'s envelopes. Reshare sessions
    /// live at the *activation* epoch but are signed under the *old* keys
    /// (the new ones do not exist yet), so their tag is read one epoch
    /// earlier — which both sides can evaluate identically however far
    /// their chains lag, because activation − 1 is always inside the old
    /// configuration's window.
    pub fn wire_key_epoch(&self, session: u64) -> u64 {
        let (epoch, role) = sessions::split(session);
        let at = if role == sessions::RESHARE { epoch.saturating_sub(1) } else { epoch };
        self.log.view_at(at).key_epoch
    }

    /// Folds the membership ops committed in `epoch` into the log. When
    /// the commit schedules a configuration change, starts the resharing
    /// ceremony (absorbing any early-arrived deals) and returns the
    /// kickoff the engine acts on.
    pub fn on_commit(&mut self, epoch: u64, txs: &[Tx]) -> Option<CeremonyKickoff> {
        let ops: Vec<MembershipOp> = txs.iter().filter_map(|t| decode_op(t)).collect();
        if !ops.is_empty() {
            self.pending_ops.retain(|(_, op)| !ops.contains(op));
        }
        let old_cfg = self.log.config_at(epoch).clone();
        let new_cfg = self.log.on_commit(epoch, &ops)?.clone();
        let kickoff = CeremonyKickoff {
            activation_epoch: new_cfg.activation_epoch,
            key_epoch: new_cfg.key_epoch,
        };
        self.ceremony = Some(LiveCeremony {
            activation_epoch: new_cfg.activation_epoch,
            ceremony: ReshareCeremony::new(old_cfg, new_cfg),
        });
        let early = std::mem::take(&mut self.early_deals);
        for (k, deal) in early {
            self.absorb_deal(k, deal);
        }
        Some(kickoff)
    }

    /// The configuration the live ceremony produces keys for, if any.
    pub fn pending_config(&self) -> Option<&CommitteeConfig> {
        self.ceremony.as_ref().map(|l| l.ceremony.target())
    }

    /// Builds, stores (for retransmission) and self-absorbs this node's
    /// deal set for the live ceremony. `None` when there is no ceremony,
    /// the node is not a canonical dealer, or it already dealt.
    pub fn make_my_deal(&mut self, rng: &mut impl RngCore) -> Option<(u64, u64, Bytes)> {
        let live = self.ceremony.as_ref()?;
        if self.my_deal.is_some() || !live.ceremony.is_dealer(self.me_global) {
            return None;
        }
        let old_key = live.ceremony.target().key_epoch.checked_sub(1)?;
        let old_crypto = self.crypto.get(old_key as usize)?.as_ref()?;
        let deal = live.ceremony.make_deal(old_crypto, self.me_global, rng)?;
        let target = live.ceremony.target().key_epoch;
        let activation = live.activation_epoch;
        let encoded = deal.encode();
        self.my_deal = Some((activation, target, encoded.clone()));
        self.absorb_deal(target, deal);
        Some((activation, target, encoded))
    }

    /// This node's stored deal for retransmission:
    /// `(activation epoch, target key epoch, encoded deal)`.
    pub fn retx_deal(&self) -> Option<(u64, u64, Bytes)> {
        self.my_deal.clone()
    }

    /// Verifies and absorbs a dealer's deal set for target `key_epoch`.
    /// Returns `true` when this deal *completed* the ceremony (the crypto
    /// bundle for the new key epoch just became available — the engine
    /// should try opening epochs). Deals for a ceremony not yet started
    /// locally are buffered; invalid or duplicate deals are dropped.
    pub fn absorb_deal(&mut self, key_epoch: u64, deal: DealSet) -> bool {
        let Some(live) = self.ceremony.as_mut() else {
            // The commit that starts this ceremony has not reached us yet
            // (RESHARE traffic can outrun chain adoption); keep the deal if
            // it could still become relevant.
            if key_epoch > self.log.latest().key_epoch
                && !self
                    .early_deals
                    .iter()
                    .any(|(k, d)| *k == key_epoch && d.dealer == deal.dealer)
            {
                self.early_deals.push((key_epoch, deal));
            }
            return false;
        };
        let target = live.ceremony.target().key_epoch;
        if key_epoch != target {
            return false;
        }
        let Some(old_crypto) =
            self.crypto.get(target as usize - 1).and_then(|c| c.as_ref())
        else {
            return false;
        };
        if !live.ceremony.absorb(deal, old_crypto) || !live.ceremony.complete() {
            return false;
        }
        // All canonical deals verified: roll. A leaver rolls to `None` —
        // it keeps its old bundles and stops participating at activation.
        let rolled = live.ceremony.rolled_crypto(old_crypto, self.me_global);
        let k = target as usize;
        if self.crypto.len() <= k {
            self.crypto.resize_with(k + 1, || None);
        }
        self.crypto[k] = rolled;
        self.ceremony = None;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wbft_components::deal_node_crypto;
    use wbft_crypto::CryptoSuite;
    use wbft_membership::MEMBERSHIP_TX_MAGIC;

    fn ctls(n_genesis: usize, n_total: usize) -> Vec<MembershipCtl> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        crate::testbed::deal_churn_crypto(n_genesis, n_total, CryptoSuite::light(), &mut rng)
            .into_iter()
            .map(|c| MembershipCtl::new(c, n_genesis))
            .collect()
    }

    #[test]
    fn ops_inject_until_committed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let crypto = deal_node_crypto(4, CryptoSuite::light(), &mut rng);
        let mut ctl = MembershipCtl::new(crypto[0].clone(), 4);
        ctl.schedule_op(2, MembershipOp::Join(4));
        assert!(ctl.injectable(1).is_empty());
        let txs = ctl.injectable(2);
        assert_eq!(txs.len(), 1);
        assert!(txs[0].starts_with(MEMBERSHIP_TX_MAGIC));
        // A commit without the op keeps it pending; one with it clears it.
        assert!(ctl.on_commit(2, &[Bytes::from_static(b"plain")]).is_none());
        assert!(ctl.injectable(3).len() == 1);
        // Join(4) alone is n=5: rejected by the log, but the op still
        // clears from the pending set — it was committed and judged.
        assert!(ctl.on_commit(3, &txs).is_none());
        assert!(ctl.injectable(4).is_empty());
    }

    #[test]
    fn full_swap_ceremony_across_controllers() {
        // Genesis {0,1,2,3}; node 4 joins, node 0 leaves.
        let mut ctls = ctls(4, 5);
        let ops = [encode_op(MembershipOp::Join(4)), encode_op(MembershipOp::Leave(0))];
        let mut kicks = Vec::new();
        for ctl in ctls.iter_mut() {
            let kick = ctl.on_commit(3, &ops).expect("change must schedule");
            assert_eq!(kick.activation_epoch, 3 + wbft_membership::ACTIVATION_DELAY);
            assert_eq!(kick.key_epoch, 1);
            kicks.push(kick);
        }
        // Epochs before activation stay under the old committee.
        for ctl in &ctls {
            assert_eq!(ctl.committee_at(4).map(|(n, ..)| n), ctl.committee_at(0).map(|(n, ..)| n));
            assert!(!ctl.can_open(5), "new keys cannot exist before the ceremony");
        }
        // Dealers = {1, 2, 3}: the surviving old members cover 2f+1, so
        // the leaver is not needed as a dealer.
        let mut deals = Vec::new();
        for (i, ctl) in ctls.iter_mut().enumerate() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
            if let Some((act, key, bytes)) = ctl.make_my_deal(&mut rng) {
                assert_eq!((act, key), (5, 1));
                deals.push(bytes);
            }
        }
        assert_eq!(deals.len(), 3, "2f+1 canonical dealers");
        // Everyone absorbs everyone's deals; ceremony completes everywhere.
        for ctl in ctls.iter_mut() {
            for bytes in &deals {
                let deal = DealSet::decode(bytes).unwrap();
                ctl.absorb_deal(1, deal);
            }
            assert!(ctl.crypto_at(5).is_some() || !ctl.member_at(5));
        }
        // Leaver 0: member before, not after, keeps no epoch-1 bundle.
        assert!(ctls[0].member_at(4) && !ctls[0].member_at(5));
        assert!(ctls[0].crypto_at(5).is_none() && !ctls[0].can_open(5));
        // Joiner 4: opposite.
        assert!(!ctls[4].member_at(4) && ctls[4].member_at(5));
        let joiner = ctls[4].crypto_at(5).unwrap();
        assert_eq!(ctls[4].committee_at(5), Some((4, 1, 3)));
        // The rolled shares still sign under the genesis group key.
        let survivor = ctls[1].crypto_at(5).unwrap();
        let msg = b"post-roll";
        let s_a = survivor.prbc_sec.sign_share(msg);
        let s_b = joiner.prbc_sec.sign_share(msg);
        let sig = survivor.prbc_pub.combine(&[s_a, s_b]).unwrap();
        ctls[0].crypto_at(0).unwrap().prbc_pub.verify(msg, &sig).unwrap();
        // Wire tags: old epochs tag 0, active epochs tag 1, the reshare
        // session of the activation epoch tags under the old key epoch.
        let ctl = &ctls[1];
        assert_eq!(ctl.wire_key_epoch(sessions::of(4, sessions::BROADCAST)), 0);
        assert_eq!(ctl.wire_key_epoch(sessions::of(5, sessions::BROADCAST)), 1);
        assert_eq!(ctl.wire_key_epoch(sessions::of(5, sessions::RESHARE)), 0);
    }

    #[test]
    fn early_deals_buffer_until_the_commit_lands() {
        let mut ctls = ctls(4, 5);
        let ops = [encode_op(MembershipOp::Join(4)), encode_op(MembershipOp::Leave(0))];
        // Dealers {1, 2, 3} (the survivors) commit and deal...
        let mut deals = Vec::new();
        for (i, ctl) in ctls.iter_mut().enumerate().skip(1).take(3) {
            ctl.on_commit(0, &ops).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(200 + i as u64);
            deals.push(ctl.make_my_deal(&mut rng).unwrap().2);
        }
        // ...while the joiner has not adopted the commit yet: deals buffer.
        for bytes in &deals {
            assert!(!ctls[4].absorb_deal(1, DealSet::decode(bytes).unwrap()));
        }
        // Its local view still has the genesis committee — it is no member
        // and cannot open anything.
        assert!(!ctls[4].member_at(2) && !ctls[4].can_open(2));
        // The commit arrives (chain adoption); buffered deals finish the
        // ceremony immediately.
        ctls[4].on_commit(0, &ops).unwrap();
        assert!(ctls[4].crypto_at(2).is_some());
        assert_eq!(ctls[4].committee_at(2), Some((4, 1, 3)));
    }
}
