//! Measurement counters: the quantities the paper's tables and figures are
//! made of.
//!
//! *Channel accesses per node* is the statistic behind Table I (message
//! overhead); airtime, collisions and CPU time explain the latency figures.

use crate::time::SimDuration;
use crate::topology::NodeId;

/// Counters for one node.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct NodeMetrics {
    /// Completed transmissions — each one is one channel-access contention
    /// (the "message overhead per node" of Table I).
    pub channel_accesses: u64,
    /// Bytes transmitted (nominal wire bytes, i.e. what the paper's packets
    /// would occupy).
    pub bytes_sent: u64,
    /// Airtime spent transmitting.
    pub airtime: SimDuration,
    /// Frames successfully delivered to this node's protocol.
    pub frames_received: u64,
    /// Frames this node lost to a collision.
    pub lost_collision: u64,
    /// Frames this node lost to channel noise (loss model).
    pub lost_noise: u64,
    /// Frames missed because the half-duplex radio was transmitting.
    pub lost_half_duplex: u64,
    /// Virtual CPU time charged by the protocol (crypto, parsing).
    pub cpu_time: SimDuration,
}

/// Aggregated counters for a simulation run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    per_node: Vec<NodeMetrics>,
    /// Collision events on the medium (each counted once, not per receiver).
    pub collisions: u64,
}

impl Metrics {
    /// Creates counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics { per_node: vec![NodeMetrics::default(); n], collisions: 0 }
    }

    /// Reassembles counters from per-node parts (report deserialization).
    pub fn from_parts(per_node: Vec<NodeMetrics>, collisions: u64) -> Self {
        Metrics { per_node, collisions }
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Counters of one node.
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        &self.per_node[id.index()]
    }

    /// Mutable counters of one node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeMetrics {
        &mut self.per_node[id.index()]
    }

    /// Iterates all per-node counters.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeMetrics)> {
        self.per_node.iter().enumerate().map(|(i, m)| (NodeId(i as u16), m))
    }

    /// Total channel accesses across nodes.
    pub fn total_channel_accesses(&self) -> u64 {
        self.per_node.iter().map(|m| m.channel_accesses).sum()
    }

    /// Mean channel accesses per node.
    pub fn mean_channel_accesses(&self) -> f64 {
        if self.per_node.is_empty() {
            0.0
        } else {
            self.total_channel_accesses() as f64 / self.per_node.len() as f64
        }
    }

    /// Total bytes put on the air.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.bytes_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut m = Metrics::new(3);
        m.node_mut(NodeId(0)).channel_accesses = 4;
        m.node_mut(NodeId(1)).channel_accesses = 6;
        m.node_mut(NodeId(2)).bytes_sent = 100;
        assert_eq!(m.total_channel_accesses(), 10);
        assert!((m.mean_channel_accesses() - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.total_bytes_sent(), 100);
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn empty_metrics_mean_is_zero() {
        assert_eq!(Metrics::new(0).mean_channel_accesses(), 0.0);
    }
}
