//! Worst-case asynchronous delivery scheduling.
//!
//! The paper's adversary (§III-A2) may delay and reorder honest-to-honest
//! messages arbitrarily, subject only to eventual delivery. [`adversary`]
//! models the *stochastic* corner of that power (loss "weather", fixed
//! targeted delays); this module models the *scheduling* corner: an active
//! adversary that looks at each deliverable frame and decides, per
//! delivery, how long to sit on it — up to a hard per-delivery budget the
//! simulator enforces regardless of what the scheduler returns, so the
//! eventual-delivery assumption holds *by construction*.
//!
//! A scheduler is installed with [`Simulator::set_scheduler`] and consulted
//! once per (transmission, receiver) pair after the loss roll: it sees the
//! frame ([`Delivery`]) and returns extra receive delay. Schedulers own
//! their RNG (seeded from [`SchedConfig::seed`], independent of the
//! simulation stream), so installing one never perturbs the rest of the
//! run's randomness — an unscheduled run is byte-identical to the same run
//! before this module existed.
//!
//! Content-agnostic policies ([`SchedPolicy::Reorder`],
//! [`SchedPolicy::Victim`]) are built here via
//! [`SchedConfig::build_generic`]. Protocol-aware policies — e.g. delaying
//! the quorum-completing coin share of an ABA round — need to decode
//! envelopes, which this crate cannot (it sits below `wbft-net`), so the
//! consensus layer builds those from the same declarative config
//! (`wbft_consensus::fuzz::build_scheduler`).
//!
//! [`adversary`]: crate::adversary
//! [`Simulator::set_scheduler`]: crate::sim::Simulator::set_scheduler

use crate::time::{SimDuration, SimTime};
use crate::topology::{ChannelId, NodeId};
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// One deliverable frame, as shown to a [`DeliveryScheduler`]: everything
/// the adversary of the model can observe about a delivery it controls.
#[derive(Debug)]
pub struct Delivery<'a> {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Channel the frame was heard on.
    pub channel: ChannelId,
    /// The frame payload (the adversary reads traffic; it cannot forge —
    /// envelopes are signed at the protocol layer).
    pub payload: &'a Bytes,
    /// Nominal wire length in bytes.
    pub nominal_len: usize,
    /// Simulated time the airtime ended.
    pub now: SimTime,
}

/// An adversarial delivery scheduler. Consulted once per delivery; the
/// simulator clamps whatever [`DeliveryScheduler::delay`] returns to
/// [`DeliveryScheduler::budget`], so no implementation can break the
/// bounded-delay (eventual delivery) model.
pub trait DeliveryScheduler {
    /// Extra receive delay to impose on this delivery.
    fn delay(&mut self, d: &Delivery<'_>) -> SimDuration;

    /// The hard per-delivery delay cap the simulator enforces.
    fn budget(&self) -> SimDuration;
}

/// Counters the simulator keeps about an installed scheduler — separate
/// from [`Metrics`](crate::metrics::Metrics) so report schemas (and their
/// golden fixtures) are untouched by scheduled runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Deliveries the scheduler was consulted on.
    pub considered: u64,
    /// Deliveries it delayed by a non-zero amount.
    pub delayed: u64,
    /// Sum of imposed extra delays (µs, post-clamp).
    pub total_extra_us: u64,
}

/// Declarative, serializable description of a scheduling attack — what a
/// fuzz case carries and a fixture replays.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedConfig {
    /// Scheduler RNG seed (independent of the simulation seed).
    pub seed: u64,
    /// Hard per-delivery delay budget; every policy is clamped to it.
    pub budget: SimDuration,
    /// The attack.
    pub policy: SchedPolicy,
}

/// The scheduling attacks the testbed knows how to mount.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SchedPolicy {
    /// Adversarial reorder: each delivery independently delayed by a
    /// uniform draw in `[0, budget]` with probability `p` — maximal
    /// content-blind reordering within the budget.
    Reorder {
        /// Probability a delivery is delayed, in `[0, 1]`.
        p: f64,
    },
    /// Starve a victim set: every delivery *to* a victim is held back by
    /// the full budget (deliveries between non-victims flow normally).
    Victim {
        /// The starved receivers.
        victims: Vec<NodeId>,
    },
    /// Protocol-aware coin starvation: per receiver and ABA round, let the
    /// first `pass` coin shares through promptly and hold every later one
    /// (the quorum-completing `pass+1`-th, typically `f+1`-th) for the full
    /// budget. Built by the consensus layer, which can decode envelopes.
    CoinStarve {
        /// Shares per (receiver, round) delivered without delay.
        pass: u32,
    },
}

impl SchedConfig {
    /// Validates the config at scenario build time: the budget must be a
    /// positive finite bound (a zero budget is a misconfigured no-op, an
    /// unbounded one would violate eventual delivery) and probabilities
    /// must be proper.
    pub fn validate(&self) -> Result<(), String> {
        if self.budget.as_micros() == 0 {
            return Err("scheduler budget must be positive".into());
        }
        match &self.policy {
            SchedPolicy::Reorder { p } => {
                if !p.is_finite() || !(0.0..=1.0).contains(p) {
                    return Err(format!("reorder probability {p} outside [0, 1]"));
                }
            }
            SchedPolicy::Victim { victims } => {
                if victims.is_empty() {
                    return Err("victim policy needs at least one victim".into());
                }
            }
            SchedPolicy::CoinStarve { .. } => {}
        }
        Ok(())
    }

    /// Builds the scheduler for content-agnostic policies. Returns `None`
    /// for protocol-aware policies ([`SchedPolicy::CoinStarve`]), which
    /// only a layer that can decode envelopes can construct.
    pub fn build_generic(&self) -> Option<Box<dyn DeliveryScheduler>> {
        match &self.policy {
            SchedPolicy::Reorder { p } => Some(Box::new(ReorderScheduler {
                p: *p,
                budget: self.budget,
                rng: ChaCha12Rng::seed_from_u64(self.seed),
            })),
            SchedPolicy::Victim { victims } => Some(Box::new(VictimScheduler {
                victims: victims.clone(),
                budget: self.budget,
            })),
            SchedPolicy::CoinStarve { .. } => None,
        }
    }
}

/// See [`SchedPolicy::Reorder`].
pub struct ReorderScheduler {
    p: f64,
    budget: SimDuration,
    rng: ChaCha12Rng,
}

impl DeliveryScheduler for ReorderScheduler {
    fn delay(&mut self, _d: &Delivery<'_>) -> SimDuration {
        if self.p > 0.0 && self.rng.random_bool(self.p.min(1.0)) {
            SimDuration::from_micros(self.rng.random_range(0..=self.budget.as_micros()))
        } else {
            SimDuration::ZERO
        }
    }

    fn budget(&self) -> SimDuration {
        self.budget
    }
}

/// See [`SchedPolicy::Victim`].
pub struct VictimScheduler {
    victims: Vec<NodeId>,
    budget: SimDuration,
}

impl DeliveryScheduler for VictimScheduler {
    fn delay(&mut self, d: &Delivery<'_>) -> SimDuration {
        if self.victims.contains(&d.dst) {
            self.budget
        } else {
            SimDuration::ZERO
        }
    }

    fn budget(&self) -> SimDuration {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(payload: &Bytes, dst: u16) -> Delivery<'_> {
        Delivery {
            src: NodeId(0),
            dst: NodeId(dst),
            channel: ChannelId(0),
            payload,
            nominal_len: payload.len(),
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn reorder_delays_stay_inside_budget_and_are_deterministic() {
        let cfg = SchedConfig {
            seed: 9,
            budget: SimDuration::from_secs(5),
            policy: SchedPolicy::Reorder { p: 0.7 },
        };
        cfg.validate().unwrap();
        let payload = Bytes::from_static(&[1, 2, 3]);
        let run = || {
            let mut s = cfg.build_generic().expect("generic policy");
            (0..200).map(|i| s.delay(&delivery(&payload, i % 4)).as_micros()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same schedule");
        assert!(a.iter().all(|&d| d <= 5_000_000));
        assert!(a.iter().any(|&d| d > 0), "p=0.7 must delay something");
        assert!(a.contains(&0), "p=0.7 must pass something");
    }

    #[test]
    fn victim_policy_starves_only_victims() {
        let cfg = SchedConfig {
            seed: 0,
            budget: SimDuration::from_secs(2),
            policy: SchedPolicy::Victim { victims: vec![NodeId(2)] },
        };
        cfg.validate().unwrap();
        let mut s = cfg.build_generic().expect("generic policy");
        let payload = Bytes::from_static(&[0; 4]);
        assert_eq!(s.delay(&delivery(&payload, 2)), SimDuration::from_secs(2));
        assert_eq!(s.delay(&delivery(&payload, 1)), SimDuration::ZERO);
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let bad_budget = SchedConfig {
            seed: 0,
            budget: SimDuration::ZERO,
            policy: SchedPolicy::Reorder { p: 0.5 },
        };
        assert!(bad_budget.validate().is_err());
        let bad_p = SchedConfig {
            seed: 0,
            budget: SimDuration::from_secs(1),
            policy: SchedPolicy::Reorder { p: 1.5 },
        };
        assert!(bad_p.validate().is_err());
        let no_victims = SchedConfig {
            seed: 0,
            budget: SimDuration::from_secs(1),
            policy: SchedPolicy::Victim { victims: vec![] },
        };
        assert!(no_victims.validate().is_err());
    }

    #[test]
    fn coin_starve_is_not_buildable_at_this_layer() {
        let cfg = SchedConfig {
            seed: 0,
            budget: SimDuration::from_secs(1),
            policy: SchedPolicy::CoinStarve { pass: 1 },
        };
        cfg.validate().unwrap();
        assert!(cfg.build_generic().is_none(), "needs envelope decoding upstream");
    }
}
