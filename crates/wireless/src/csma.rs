//! CSMA/CA medium-access parameters.
//!
//! TDMA needs a synchronized schedule and is therefore unusable under the
//! asynchronous model (paper §IV-A); carrier-sense multiple access is "the
//! only option". The simulator implements listen-before-talk with a random
//! backoff drawn uniformly from a fixed contention window: broadcast frames
//! carry no MAC-level acknowledgement, so there is no binary exponential
//! backoff — loss recovery belongs to the NACK layer above.

use crate::time::SimDuration;
use rand::Rng;

/// Medium-access parameters shared by all nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CsmaParams {
    /// Idle period sensed before the backoff countdown starts.
    pub difs_us: u64,
    /// Width of one backoff slot.
    pub slot_us: u64,
    /// Number of slots in the contention window; backoff is drawn uniformly
    /// from `0..cw_slots`.
    pub cw_slots: u32,
}

impl CsmaParams {
    /// Defaults tuned for the LoRa-class radio: slots comparable to a
    /// channel-activity-detection period.
    pub fn lora_class() -> Self {
        CsmaParams { difs_us: 4_000, slot_us: 1_500, cw_slots: 16 }
    }

    /// Draws a full contention delay (DIFS + random backoff).
    pub fn draw_backoff(&self, rng: &mut impl Rng) -> SimDuration {
        let slots = rng.random_range(0..self.cw_slots) as u64;
        SimDuration::from_micros(self.difs_us + slots * self.slot_us)
    }

    /// The largest possible contention delay.
    pub fn max_backoff(&self) -> SimDuration {
        SimDuration::from_micros(self.difs_us + (self.cw_slots as u64 - 1) * self.slot_us)
    }
}

impl Default for CsmaParams {
    fn default() -> Self {
        Self::lora_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_within_bounds() {
        let p = CsmaParams::lora_class();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        for _ in 0..200 {
            let b = p.draw_backoff(&mut rng);
            assert!(b.as_micros() >= p.difs_us);
            assert!(b <= p.max_backoff());
        }
    }

    #[test]
    fn backoff_varies() {
        let p = CsmaParams::lora_class();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2);
        let draws: Vec<_> = (0..32).map(|_| p.draw_backoff(&mut rng)).collect();
        assert!(draws.iter().any(|d| *d != draws[0]), "all backoffs equal: {draws:?}");
    }

    #[test]
    fn backoff_is_deterministic_under_seed() {
        let p = CsmaParams::lora_class();
        let mut a = rand_chacha::ChaCha12Rng::seed_from_u64(3);
        let mut b = rand_chacha::ChaCha12Rng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(p.draw_backoff(&mut a), p.draw_backoff(&mut b));
        }
    }
}
