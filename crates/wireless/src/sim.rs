//! The discrete-event simulator core.
//!
//! Executes [`NodeBehavior`]s over a shared-channel wireless medium with
//! CSMA/CA contention, half-duplex radios, collisions, stochastic loss,
//! adversarial delay, a DMA-buffer delivery model, and a serial CPU that
//! crypto operations charge virtual time to. Fully deterministic for a
//! given seed: the event queue is ordered by `(time, sequence)` and all
//! randomness flows from one ChaCha12 stream.

use crate::adversary::{AdversaryConfig, LossModel};
use crate::behavior::{Command, Frame, NodeBehavior, NodeCtx};
use crate::csma::CsmaParams;
use crate::dma::DmaParams;
use crate::metrics::Metrics;
use crate::radio::RadioParams;
use crate::sched::{Delivery, DeliveryScheduler, SchedStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{ChannelId, NodeId, Topology};
use bytes::Bytes;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static configuration of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Physical-layer parameters.
    pub radio: RadioParams,
    /// Medium-access parameters.
    pub csma: CsmaParams,
    /// DMA delivery model.
    pub dma: DmaParams,
    /// Stochastic loss model.
    pub loss: LossModel,
    /// Adversarial delivery scheduling.
    pub adversary: AdversaryConfig,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
}

#[derive(Debug)]
enum EventKind {
    Start(NodeId),
    Timer(NodeId, u64),
    TxAttempt(NodeId),
    TxStart(NodeId),
    TxEnd(u64),
    RxArrive(NodeId, Frame),
    RxFlush(NodeId),
    RxProcess(NodeId, Frame),
}

struct Event {
    at: SimTime,
    seq: u64,
    /// Incarnation of the event's node when it was scheduled; stale events
    /// from before a crash are dropped at dispatch. [`INC_ANY`] for events
    /// not bound to a node's lifetime (a transmission already in the air
    /// ends regardless of what its sender does next).
    inc: u32,
    kind: EventKind,
}

/// Incarnation wildcard: the event survives crashes of its node.
const INC_ANY: u32 = u32::MAX;

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxState {
    Idle,
    Backoff,
    Deferring,
    Transmitting,
}

struct QueuedFrame {
    channel: ChannelId,
    payload: Bytes,
    nominal_len: usize,
    slot: Option<u64>,
}

struct NodeState {
    tx_state: TxState,
    tx_queue: std::collections::VecDeque<QueuedFrame>,
    /// End of this node's most recent (or current) transmission.
    last_tx_end: SimTime,
    /// Start of this node's current transmission, if transmitting.
    current_tx_start: Option<SimTime>,
    cpu_busy_until: SimTime,
    dma_buffered: Vec<Frame>,
    dma_buffered_bytes: usize,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            tx_state: TxState::Idle,
            tx_queue: std::collections::VecDeque::new(),
            last_tx_end: SimTime::ZERO,
            current_tx_start: None,
            cpu_busy_until: SimTime::ZERO,
            dma_buffered: Vec::new(),
            dma_buffered_bytes: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct Transmission {
    seq: u64,
    sender: NodeId,
    channel: ChannelId,
    start: SimTime,
    end: SimTime,
    payload: Bytes,
    nominal_len: usize,
}

/// The simulator. Generic over the behavior type; heterogeneous deployments
/// (e.g. some nodes Byzantine) use an enum or `Box<dyn NodeBehavior>`.
pub struct Simulator<B: NodeBehavior> {
    cfg: SimConfig,
    topology: Topology,
    behaviors: Vec<Option<B>>,
    nodes: Vec<NodeState>,
    queue: BinaryHeap<Reverse<Event>>,
    /// All transmissions that may still overlap future receptions.
    recent_tx: Vec<Transmission>,
    /// Nodes deferring on each channel, waiting for it to go idle.
    waiting: Vec<(ChannelId, NodeId)>,
    rng: ChaCha12Rng,
    now: SimTime,
    seq: u64,
    metrics: Metrics,
    started: bool,
    /// Events dispatched so far (the fuzzer's liveness budget unit).
    events: u64,
    /// Per-node crash counter; bumped by [`Simulator::crash_node`] so every
    /// event scheduled for the previous incarnation dies on dispatch.
    incarnations: Vec<u32>,
    /// Nodes currently crashed (no behavior installed).
    down: Vec<bool>,
    /// Adversarial delivery scheduler, consulted per (tx, receiver) pair
    /// after the loss roll. Owns its RNG, so installing one leaves the
    /// simulation stream untouched.
    scheduler: Option<Box<dyn DeliveryScheduler>>,
    sched_stats: SchedStats,
    /// Scratch buffers recycled across events (hot-path: the event loop
    /// must not allocate per delivery).
    cmd_scratch: Vec<Command>,
    woken_scratch: Vec<NodeId>,
}

impl<B: NodeBehavior> Simulator<B> {
    /// Builds a simulator over `topology` with one behavior per node.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len() != topology.len()`.
    pub fn new(cfg: SimConfig, topology: Topology, behaviors: Vec<B>) -> Self {
        assert_eq!(
            behaviors.len(),
            topology.len(),
            "one behavior per topology node required"
        );
        let n = behaviors.len();
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        Simulator {
            cfg,
            topology,
            behaviors: behaviors.into_iter().map(Some).collect(),
            nodes: (0..n).map(|_| NodeState::new()).collect(),
            queue: BinaryHeap::new(),
            recent_tx: Vec::new(),
            waiting: Vec::new(),
            rng,
            now: SimTime::ZERO,
            seq: 0,
            metrics: Metrics::new(n),
            started: false,
            events: 0,
            incarnations: vec![0; n],
            down: vec![false; n],
            scheduler: None,
            sched_stats: SchedStats::default(),
            cmd_scratch: Vec::new(),
            woken_scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Measurement counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Events dispatched so far — the fuzzer's liveness-budget unit (a
    /// stalled run stops making progress in simulated time long before its
    /// deadline, but keeps dispatching retry events; counting events bounds
    /// both).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Installs an adversarial delivery scheduler (see [`crate::sched`]).
    /// Every delay it returns is clamped to its own
    /// [`DeliveryScheduler::budget`], so eventual delivery holds whatever
    /// the implementation does.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn DeliveryScheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Counters about the installed scheduler's interventions (zeroes when
    /// no scheduler is installed).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched_stats
    }

    /// The topology (channels may have changed at runtime).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Read access to a node's behavior (for extracting outputs).
    pub fn behavior(&self, node: NodeId) -> &B {
        self.behaviors[node.index()].as_ref().expect("behavior present between events")
    }

    /// Mutable access to a node's behavior.
    pub fn behavior_mut(&mut self, node: NodeId) -> &mut B {
        self.behaviors[node.index()].as_mut().expect("behavior present between events")
    }

    /// Iterates all *live* behaviors (crashed nodes are skipped until
    /// restarted).
    pub fn behaviors(&self) -> impl Iterator<Item = (NodeId, &B)> {
        self.behaviors
            .iter()
            .enumerate()
            .filter_map(|(i, b)| Some((NodeId(i as u16), b.as_ref()?)))
    }

    /// Read access to a node's behavior, or `None` while it is crashed.
    pub fn try_behavior(&self, node: NodeId) -> Option<&B> {
        self.behaviors[node.index()].as_ref()
    }

    /// `true` while `node` is crashed (between [`Simulator::crash_node`]
    /// and [`Simulator::restart_node`]).
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Crash-faults `node` right now: its behavior (all protocol state) is
    /// dropped, its radio goes dark mid-transmission (an in-flight frame is
    /// cut — receivers never see it), and every event scheduled for it —
    /// timers, queued deliveries, backoffs — dies with its incarnation. The
    /// durable state a real crash leaves behind lives *outside* the
    /// behavior (e.g. a shared-memory journal store).
    ///
    /// # Panics
    ///
    /// Panics if `node` is already down.
    pub fn crash_node(&mut self, node: NodeId) {
        let i = node.index();
        assert!(!self.down[i], "node {} is already down", node.index());
        self.down[i] = true;
        self.incarnations[i] += 1;
        self.behaviors[i] = None;
        self.nodes[i] = NodeState::new();
        self.waiting.retain(|&(_, n)| n != node);
        // The dying radio's carrier vanishes: in-flight transmissions are
        // cut and never delivered (their TxEnd finds nothing to deliver);
        // completed ones still matter for ongoing collision checks.
        let now = self.now;
        self.recent_tx.retain(|t| t.sender != node || t.end <= now);
    }

    /// Restarts a crashed `node` with a fresh behavior (typically rebuilt
    /// from recovered durable state): it gets a clean radio/CPU state and an
    /// `on_start` at the current simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not down.
    pub fn restart_node(&mut self, node: NodeId, behavior: B) {
        let i = node.index();
        assert!(self.down[i], "node {} is not down", node.index());
        self.down[i] = false;
        self.behaviors[i] = Some(behavior);
        self.push(self.now, EventKind::Start(node));
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let inc = match &kind {
            EventKind::Start(n)
            | EventKind::Timer(n, _)
            | EventKind::TxAttempt(n)
            | EventKind::TxStart(n)
            | EventKind::RxArrive(n, _)
            | EventKind::RxFlush(n)
            | EventKind::RxProcess(n, _) => self.incarnations[n.index()],
            // A transmission in the air outlives its sender's crash; the
            // delivery logic consults `recent_tx`, not the sender.
            EventKind::TxEnd(_) => INC_ANY,
        };
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq: self.seq, inc, kind }));
    }

    fn start_if_needed(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.behaviors.len() {
                self.push(SimTime::ZERO, EventKind::Start(NodeId(i as u16)));
            }
        }
    }

    /// Runs until the queue drains or `deadline` passes, whichever first.
    /// Returns the time reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.start_if_needed();
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                self.now = deadline;
                return self.now;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev.kind, ev.inc);
        }
        self.now
    }

    /// Runs until `pred` holds over the behaviors (checked after every
    /// event) or `deadline` passes. Returns true iff the predicate held.
    pub fn run_until_pred(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&Self) -> bool,
    ) -> bool {
        self.start_if_needed();
        if pred(self) {
            return true;
        }
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                self.now = deadline;
                return false;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev.kind, ev.inc);
            if pred(self) {
                return true;
            }
        }
        false
    }

    fn dispatch(&mut self, kind: EventKind, inc: u32) {
        // Events addressed to a crashed node — or to a previous incarnation
        // of a restarted one — are dropped unprocessed: a dead node has no
        // timers, no CPU, and no radio.
        let node = match &kind {
            EventKind::Start(n)
            | EventKind::Timer(n, _)
            | EventKind::TxAttempt(n)
            | EventKind::TxStart(n)
            | EventKind::RxArrive(n, _)
            | EventKind::RxFlush(n)
            | EventKind::RxProcess(n, _) => Some(*n),
            EventKind::TxEnd(_) => None,
        };
        if let Some(n) = node {
            let i = n.index();
            if self.down[i] || (inc != INC_ANY && inc != self.incarnations[i]) {
                return;
            }
        }
        self.events += 1;
        match kind {
            EventKind::Start(node) => self.call_behavior(node, |b, ctx| b.on_start(ctx)),
            EventKind::Timer(node, id) => {
                // Timers respect CPU availability, like frame processing.
                let busy = self.nodes[node.index()].cpu_busy_until;
                if busy > self.now {
                    self.push(busy, EventKind::Timer(node, id));
                } else {
                    self.call_behavior(node, |b, ctx| b.on_timer(id, ctx));
                }
            }
            EventKind::TxAttempt(node) => self.tx_attempt(node),
            EventKind::TxStart(node) => self.tx_start(node),
            EventKind::TxEnd(seq) => self.tx_end(seq),
            EventKind::RxArrive(node, frame) => self.rx_arrive(node, frame),
            EventKind::RxFlush(node) => self.rx_flush(node),
            EventKind::RxProcess(node, frame) => {
                let busy = self.nodes[node.index()].cpu_busy_until;
                if busy > self.now {
                    self.push(busy, EventKind::RxProcess(node, frame));
                } else {
                    self.metrics.node_mut(node).frames_received += 1;
                    self.call_behavior(node, |b, ctx| b.on_frame(&frame, ctx));
                }
            }
        }
    }

    /// Runs one behavior callback and applies its commands.
    fn call_behavior(&mut self, node: NodeId, f: impl FnOnce(&mut B, &mut NodeCtx)) {
        let mut behavior = self.behaviors[node.index()].take().expect("behavior present");
        // Command sink recycled across calls: callbacks run strictly
        // sequentially (commands apply after the callback returns and never
        // re-enter one), so one scratch vector serves every event.
        let mut ctx = NodeCtx {
            now: self.now,
            node,
            rng: &mut self.rng,
            cmds: std::mem::take(&mut self.cmd_scratch),
            charged: SimDuration::ZERO,
        };
        f(&mut behavior, &mut ctx);
        let NodeCtx { cmds: mut cmd_sink, charged, .. } = ctx;
        self.behaviors[node.index()] = Some(behavior);

        // Charge CPU: the node is busy until `now + charged`.
        let ready_at = if charged > SimDuration::ZERO {
            self.metrics.node_mut(node).cpu_time += charged;
            let until = self.now + charged;
            self.nodes[node.index()].cpu_busy_until = until;
            until
        } else {
            self.now
        };

        for cmd in cmd_sink.drain(..) {
            match cmd {
                Command::Broadcast { channel, payload, nominal_len, slot } => {
                    let queue = &mut self.nodes[node.index()].tx_queue;
                    let replaced = slot.is_some()
                        && queue.iter_mut().any(|q| {
                            if q.slot == slot && q.channel == channel {
                                q.payload = payload.clone();
                                q.nominal_len = nominal_len;
                                true
                            } else {
                                false
                            }
                        });
                    if !replaced {
                        queue.push_back(QueuedFrame { channel, payload, nominal_len, slot });
                    }
                    // Frames leave the CPU only after the charged crypto work.
                    self.push(ready_at, EventKind::TxAttempt(node));
                }
                Command::SetTimer { after, id } => {
                    self.push(self.now + after, EventKind::Timer(node, id));
                }
                Command::JoinChannel(ch) => self.topology.join_channel(node, ch),
                Command::LeaveChannel(ch) => self.topology.leave_channel(node, ch),
            }
        }
        self.cmd_scratch = cmd_sink;
    }

    /// `true` iff `listener` senses energy on `channel` right now. A
    /// transmission that began at this very instant is *not* sensed —
    /// carrier sense cannot see a signal with zero propagation time, which
    /// is exactly how two nodes drawing the same backoff slot collide.
    fn channel_busy_for(&self, listener: NodeId, channel: ChannelId) -> bool {
        self.recent_tx.iter().any(|t| {
            t.channel == channel
                && t.start < self.now
                && t.end > self.now
                && (t.sender == listener || self.topology.reaches(t.sender, listener, channel))
        })
    }

    fn tx_attempt(&mut self, node: NodeId) {
        let st = &self.nodes[node.index()];
        if st.tx_state != TxState::Idle || st.tx_queue.is_empty() {
            return;
        }
        let channel = st.tx_queue.front().expect("non-empty").channel;
        if self.channel_busy_for(node, channel) {
            self.nodes[node.index()].tx_state = TxState::Deferring;
            self.waiting.push((channel, node));
        } else {
            self.nodes[node.index()].tx_state = TxState::Backoff;
            let backoff = self.cfg.csma.draw_backoff(&mut self.rng);
            self.push(self.now + backoff, EventKind::TxStart(node));
        }
    }

    fn tx_start(&mut self, node: NodeId) {
        if self.nodes[node.index()].tx_state != TxState::Backoff {
            return;
        }
        let channel = match self.nodes[node.index()].tx_queue.front() {
            Some(f) => f.channel,
            None => {
                self.nodes[node.index()].tx_state = TxState::Idle;
                return;
            }
        };
        if self.channel_busy_for(node, channel) {
            self.nodes[node.index()].tx_state = TxState::Deferring;
            self.waiting.push((channel, node));
            return;
        }
        let frame = self.nodes[node.index()].tx_queue.pop_front().expect("non-empty");
        let stretch = self.topology.routing_for(frame.channel).airtime_stretch;
        let base = self.cfg.radio.airtime(frame.nominal_len.min(self.cfg.radio.max_frame_bytes));
        let airtime = SimDuration::from_micros((base.as_micros() as f64 * stretch) as u64);
        let end = self.now + airtime;
        self.seq += 1;
        let tx_seq = self.seq;
        self.recent_tx.push(Transmission {
            seq: tx_seq,
            sender: node,
            channel: frame.channel,
            start: self.now,
            end,
            payload: frame.payload,
            nominal_len: frame.nominal_len,
        });
        let st = &mut self.nodes[node.index()];
        st.tx_state = TxState::Transmitting;
        st.current_tx_start = Some(self.now);
        st.last_tx_end = end;
        let m = self.metrics.node_mut(node);
        m.channel_accesses += 1;
        m.bytes_sent += frame.nominal_len as u64;
        m.airtime += airtime;
        self.push(end, EventKind::TxEnd(tx_seq));
    }

    fn tx_end(&mut self, tx_seq: u64) {
        let tx = match self.recent_tx.iter().find(|t| t.seq == tx_seq) {
            Some(t) => t.clone(),
            None => return,
        };
        // Sender becomes idle and re-contends for its next frame.
        {
            let st = &mut self.nodes[tx.sender.index()];
            st.tx_state = TxState::Idle;
            st.current_tx_start = None;
            if !st.tx_queue.is_empty() {
                self.push(self.now, EventKind::TxAttempt(tx.sender));
            }
        }

        // Receivers.
        let n = self.nodes.len();
        let mut collided_any = false;
        for r in 0..n {
            let r_id = NodeId(r as u16);
            if r_id == tx.sender || !self.topology.reaches(tx.sender, r_id, tx.channel) {
                continue;
            }
            // Half-duplex: receiver transmitted during our airtime?
            let rst = &self.nodes[r];
            let was_transmitting = match rst.current_tx_start {
                Some(start) => start < tx.end, // still transmitting now
                None => rst.last_tx_end > tx.start,
            };
            if was_transmitting {
                self.metrics.node_mut(r_id).lost_half_duplex += 1;
                continue;
            }
            // Collision: another audible transmission overlapped ours.
            let collided = self.recent_tx.iter().any(|t| {
                t.seq != tx.seq
                    && t.channel == tx.channel
                    && t.start < tx.end
                    && t.end > tx.start
                    && t.sender != r_id
                    && self.topology.reaches(t.sender, r_id, tx.channel)
            });
            if collided {
                collided_any = true;
                self.metrics.node_mut(r_id).lost_collision += 1;
                continue;
            }
            // Stochastic loss.
            if self.cfg.loss.is_lost(tx.sender, r_id, &mut self.rng) {
                self.metrics.node_mut(r_id).lost_noise += 1;
                continue;
            }
            // Adversarial + scheduled + routing latency, then DMA arrival.
            let extra = self.cfg.adversary.extra_delay(tx.sender, r_id, &mut self.rng);
            let sched = match self.scheduler.as_mut() {
                Some(s) => {
                    let d = s
                        .delay(&Delivery {
                            src: tx.sender,
                            dst: r_id,
                            channel: tx.channel,
                            payload: &tx.payload,
                            nominal_len: tx.nominal_len,
                            now: self.now,
                        })
                        .min(s.budget());
                    self.sched_stats.considered += 1;
                    if d > SimDuration::ZERO {
                        self.sched_stats.delayed += 1;
                        self.sched_stats.total_extra_us += d.as_micros();
                    }
                    d
                }
                None => SimDuration::ZERO,
            };
            let routed = self.topology.routing_for(tx.channel).extra_latency();
            let frame = Frame {
                src: tx.sender,
                channel: tx.channel,
                payload: tx.payload.clone(),
                nominal_len: tx.nominal_len,
            };
            self.push(self.now + extra + sched + routed, EventKind::RxArrive(r_id, frame));
        }
        if collided_any {
            self.metrics.collisions += 1;
        }

        // Wake deferring nodes on this channel (scratch vector recycled —
        // this runs once per transmission).
        let mut woken = std::mem::take(&mut self.woken_scratch);
        self.waiting.retain(|(ch, node)| {
            if *ch == tx.channel {
                woken.push(*node);
                false
            } else {
                true
            }
        });
        for node in woken.drain(..) {
            self.nodes[node.index()].tx_state = TxState::Idle;
            self.push(self.now, EventKind::TxAttempt(node));
        }
        self.woken_scratch = woken;

        // Prune history exactly: an ended transmission only matters for the
        // collision checks of transmissions still in the air, which all
        // started at or after the earliest in-flight start — so anything
        // ending at or before that start can never overlap a future check,
        // and with an idle medium the history empties outright. (Carrier
        // sense only looks at in-flight transmissions, and future
        // transmissions start after `now`.) The just-ended transmission is
        // always removed, matching the long-standing tie-break: of two
        // frames ending at the same instant, the second's collision check
        // no longer sees the first. This keeps the linear scans in
        // `channel_busy_for`/`tx_end` short on busy grids without changing
        // any delivery.
        let min_active_start = self.nodes.iter().filter_map(|st| st.current_tx_start).min();
        let now = self.now;
        self.recent_tx.retain(|t| {
            t.seq != tx_seq
                && (t.end > now || min_active_start.is_some_and(|s| t.end > s))
        });
    }

    fn rx_arrive(&mut self, node: NodeId, frame: Frame) {
        let (delay, flush) =
            self.cfg.dma.arrival(frame.nominal_len, self.nodes[node.index()].dma_buffered_bytes);
        if flush {
            let mut pending = std::mem::take(&mut self.nodes[node.index()].dma_buffered);
            self.nodes[node.index()].dma_buffered_bytes = 0;
            pending.push(frame);
            for f in pending.drain(..) {
                self.push(self.now + delay, EventKind::RxProcess(node, f));
            }
            self.nodes[node.index()].dma_buffered = pending;
        } else {
            self.nodes[node.index()].dma_buffered_bytes += frame.nominal_len;
            self.nodes[node.index()].dma_buffered.push(frame);
            self.push(self.now + delay, EventKind::RxFlush(node));
        }
    }

    fn rx_flush(&mut self, node: NodeId) {
        let mut pending = std::mem::take(&mut self.nodes[node.index()].dma_buffered);
        self.nodes[node.index()].dma_buffered_bytes = 0;
        let interrupt = SimDuration::from_micros(self.cfg.dma.interrupt_us);
        for f in pending.drain(..) {
            self.push(self.now + interrupt, EventKind::RxProcess(node, f));
        }
        self.nodes[node.index()].dma_buffered = pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{SchedConfig, SchedPolicy};
    use std::collections::VecDeque;

    /// Test behavior: sends `to_send` frames at start; records receptions.
    struct Chatter {
        to_send: usize,
        payload_len: usize,
        received: Vec<(NodeId, usize)>,
        timer_log: Vec<u64>,
    }

    impl Chatter {
        fn new(to_send: usize, payload_len: usize) -> Self {
            Chatter { to_send, payload_len, received: Vec::new(), timer_log: Vec::new() }
        }
    }

    impl NodeBehavior for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            for _ in 0..self.to_send {
                ctx.broadcast(
                    ChannelId(0),
                    Bytes::from(vec![ctx.node_id().0 as u8; self.payload_len]),
                    self.payload_len,
                );
            }
        }
        fn on_frame(&mut self, frame: &Frame, _ctx: &mut NodeCtx) {
            self.received.push((frame.src, frame.payload.len()));
        }
        fn on_timer(&mut self, id: u64, _ctx: &mut NodeCtx) {
            self.timer_log.push(id);
        }
    }

    fn cfg(seed: u64) -> SimConfig {
        SimConfig { seed, ..SimConfig::default() }
    }

    #[test]
    fn single_frame_reaches_all_peers() {
        let topo = Topology::single_hop(4);
        let behaviors = vec![
            Chatter::new(1, 50),
            Chatter::new(0, 50),
            Chatter::new(0, 50),
            Chatter::new(0, 50),
        ];
        let mut sim = Simulator::new(cfg(1), topo, behaviors);
        sim.run_until(SimTime::from_micros(10_000_000));
        for r in 1..4u16 {
            assert_eq!(
                sim.behavior(NodeId(r)).received,
                vec![(NodeId(0), 50)],
                "receiver {r}"
            );
        }
        assert!(sim.behavior(NodeId(0)).received.is_empty(), "no self-reception");
        assert_eq!(sim.metrics().node(NodeId(0)).channel_accesses, 1);
    }

    #[test]
    fn all_nodes_sending_eventually_all_deliver() {
        let topo = Topology::single_hop(4);
        let behaviors: Vec<_> = (0..4).map(|_| Chatter::new(3, 100)).collect();
        let mut sim = Simulator::new(cfg(2), topo, behaviors);
        sim.run_until(SimTime::from_micros(60_000_000));
        // CSMA should avoid most collisions; each node receives most of the
        // 9 frames from its 3 peers (collisions may eat a few).
        for i in 0..4u16 {
            let got = sim.behavior(NodeId(i)).received.len();
            assert!(got >= 6, "node {i} received only {got}/9");
        }
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let run = |seed| {
            let topo = Topology::single_hop(4);
            let behaviors: Vec<_> = (0..4).map(|_| Chatter::new(2, 80)).collect();
            let mut sim = Simulator::new(cfg(seed), topo, behaviors);
            sim.run_until(SimTime::from_micros(30_000_000));
            let mut log = Vec::new();
            for i in 0..4u16 {
                log.push(sim.behavior(NodeId(i)).received.clone());
            }
            (log, sim.metrics().collisions, sim.metrics().total_channel_accesses())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let run = |seed| {
            let topo = Topology::single_hop(4);
            let behaviors: Vec<_> = (0..4).map(|_| Chatter::new(2, 80)).collect();
            let mut sim = Simulator::new(cfg(seed), topo, behaviors);
            sim.run_until(SimTime::from_micros(30_000_000));
            sim.metrics().iter().map(|(_, m)| m.airtime.as_micros()).sum::<u64>()
        };
        // Airtime totals are equal but schedules differ; compare finer: use
        // reception orders via metrics of node 0 frames_received over time is
        // not exposed — use collision counts as a weak proxy plus queue state.
        // At minimum the runs must not panic and must both complete.
        let _ = (run(1), run(2));
    }

    #[test]
    fn loss_model_drops_frames() {
        let topo = Topology::single_hop(2);
        let mut c = cfg(3);
        c.loss = LossModel::Uniform { p: 1.0 };
        let behaviors = vec![Chatter::new(5, 50), Chatter::new(0, 50)];
        let mut sim = Simulator::new(c, topo, behaviors);
        sim.run_until(SimTime::from_micros(30_000_000));
        assert!(sim.behavior(NodeId(1)).received.is_empty());
        assert_eq!(sim.metrics().node(NodeId(1)).lost_noise, 5);
    }

    #[test]
    fn scheduler_holds_back_victim_deliveries() {
        let budget = SimDuration::from_secs(5);
        let build = || {
            let topo = Topology::single_hop(2);
            let behaviors = vec![Chatter::new(1, 50), Chatter::new(0, 50)];
            Simulator::new(cfg(6), topo, behaviors)
        };
        let mut sim = build();
        sim.set_scheduler(
            SchedConfig {
                seed: 11,
                budget,
                policy: SchedPolicy::Victim { victims: vec![NodeId(1)] },
            }
            .build_generic()
            .expect("generic policy"),
        );
        // Airtime is well under a second; at 2 s an unscheduled run has
        // delivered (checked below), a starved victim has not.
        sim.run_until(SimTime::from_micros(2_000_000));
        assert!(sim.behavior(NodeId(1)).received.is_empty(), "victim starved early");
        sim.run_until(SimTime::from_micros(20_000_000));
        assert_eq!(sim.behavior(NodeId(1)).received, vec![(NodeId(0), 50)]);
        let stats = sim.sched_stats();
        assert_eq!(stats.considered, 1);
        assert_eq!(stats.delayed, 1);
        assert_eq!(stats.total_extra_us, budget.as_micros());

        let mut plain = build();
        plain.run_until(SimTime::from_micros(2_000_000));
        assert_eq!(plain.behavior(NodeId(1)).received, vec![(NodeId(0), 50)]);
    }

    #[test]
    fn inert_scheduler_leaves_the_run_untouched() {
        // The scheduler owns its RNG, so installing one that never delays
        // must reproduce the unscheduled run exactly.
        let run = |sched: bool| {
            let topo = Topology::single_hop(4);
            let behaviors: Vec<_> = (0..4).map(|_| Chatter::new(2, 80)).collect();
            let mut sim = Simulator::new(cfg(7), topo, behaviors);
            if sched {
                sim.set_scheduler(
                    SchedConfig {
                        seed: 99,
                        budget: SimDuration::from_secs(1),
                        policy: SchedPolicy::Reorder { p: 0.0 },
                    }
                    .build_generic()
                    .expect("generic policy"),
                );
            }
            sim.run_until(SimTime::from_micros(30_000_000));
            let log: Vec<_> =
                (0..4u16).map(|i| sim.behavior(NodeId(i)).received.clone()).collect();
            (log, sim.metrics().collisions)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl NodeBehavior for TimerNode {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
            fn on_timer(&mut self, id: u64, _ctx: &mut NodeCtx) {
                self.fired.push(id);
            }
        }
        let topo = Topology::single_hop(1);
        let mut sim = Simulator::new(cfg(4), topo, vec![TimerNode { fired: Vec::new() }]);
        sim.run_until(SimTime::from_micros(1_000_000));
        assert_eq!(sim.behavior(NodeId(0)).fired, vec![1, 2, 3]);
    }

    #[test]
    fn cpu_charge_delays_subsequent_processing() {
        // Node 1 charges 1 s of CPU on its first frame; the second frame's
        // processing must be delayed past that.
        struct Sluggish {
            seen_at: Vec<SimTime>,
        }
        impl NodeBehavior for Sluggish {
            fn on_start(&mut self, _ctx: &mut NodeCtx) {}
            fn on_frame(&mut self, _f: &Frame, ctx: &mut NodeCtx) {
                self.seen_at.push(ctx.now());
                ctx.charge_cpu(SimDuration::from_secs(1));
            }
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        struct Sender;
        impl NodeBehavior for Sender {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.broadcast(ChannelId(0), Bytes::from_static(&[0; 20]), 20);
                ctx.broadcast(ChannelId(0), Bytes::from_static(&[1; 20]), 20);
            }
            fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        enum Either {
            S(Sender),
            R(Sluggish),
        }
        impl NodeBehavior for Either {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                match self {
                    Either::S(s) => s.on_start(ctx),
                    Either::R(r) => r.on_start(ctx),
                }
            }
            fn on_frame(&mut self, f: &Frame, ctx: &mut NodeCtx) {
                match self {
                    Either::S(s) => s.on_frame(f, ctx),
                    Either::R(r) => r.on_frame(f, ctx),
                }
            }
            fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
                match self {
                    Either::S(s) => s.on_timer(id, ctx),
                    Either::R(r) => r.on_timer(id, ctx),
                }
            }
        }
        let topo = Topology::single_hop(2);
        let behaviors = vec![Either::S(Sender), Either::R(Sluggish { seen_at: Vec::new() })];
        let mut sim = Simulator::new(cfg(5), topo, behaviors);
        sim.run_until(SimTime::from_micros(20_000_000));
        let seen = match sim.behavior(NodeId(1)) {
            Either::R(r) => r.seen_at.clone(),
            _ => unreachable!(),
        };
        assert_eq!(seen.len(), 2);
        let gap = seen[1].saturating_since(seen[0]);
        assert!(gap >= SimDuration::from_secs(1), "second frame at {} after {}", seen[1], seen[0]);
        assert!(sim.metrics().node(NodeId(1)).cpu_time >= SimDuration::from_secs(2));
    }

    #[test]
    fn channel_isolation_between_clusters() {
        let topo = Topology::clustered(2, 2);
        struct ClusterChatter {
            received: Vec<NodeId>,
            channel: ChannelId,
        }
        impl NodeBehavior for ClusterChatter {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                ctx.broadcast(self.channel, Bytes::from_static(&[9; 10]), 10);
            }
            fn on_frame(&mut self, f: &Frame, _ctx: &mut NodeCtx) {
                self.received.push(f.src);
            }
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        let behaviors: Vec<_> = (0..4)
            .map(|i| ClusterChatter {
                received: Vec::new(),
                channel: ChannelId(if i < 2 { 1 } else { 2 }),
            })
            .collect();
        let mut sim = Simulator::new(cfg(6), topo, behaviors);
        sim.run_until(SimTime::from_micros(10_000_000));
        assert_eq!(sim.behavior(NodeId(0)).received, vec![NodeId(1)]);
        assert_eq!(sim.behavior(NodeId(1)).received, vec![NodeId(0)]);
        assert_eq!(sim.behavior(NodeId(2)).received, vec![NodeId(3)]);
        assert_eq!(sim.behavior(NodeId(3)).received, vec![NodeId(2)]);
    }

    #[test]
    fn slotted_broadcasts_supersede_queued_frames() {
        // Three slotted sends while the channel serializes: later versions
        // replace queued ones, so fewer frames hit the air than were sent.
        struct Slotter;
        impl NodeBehavior for Slotter {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                // First frame transmits; v2 queues; v3 replaces v2.
                ctx.broadcast_slot(ChannelId(0), Bytes::from_static(&[1; 40]), 40, 9);
                ctx.broadcast_slot(ChannelId(0), Bytes::from_static(&[2; 40]), 40, 9);
                ctx.broadcast_slot(ChannelId(0), Bytes::from_static(&[3; 40]), 40, 9);
            }
            fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        struct Listener {
            got: Vec<u8>,
        }
        impl NodeBehavior for Listener {
            fn on_start(&mut self, _ctx: &mut NodeCtx) {}
            fn on_frame(&mut self, f: &Frame, _ctx: &mut NodeCtx) {
                self.got.push(f.payload[0]);
            }
            fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
        }
        enum E {
            S(Slotter),
            L(Listener),
        }
        impl NodeBehavior for E {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                match self {
                    E::S(s) => s.on_start(ctx),
                    E::L(l) => l.on_start(ctx),
                }
            }
            fn on_frame(&mut self, f: &Frame, ctx: &mut NodeCtx) {
                match self {
                    E::S(s) => s.on_frame(f, ctx),
                    E::L(l) => l.on_frame(f, ctx),
                }
            }
            fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
                match self {
                    E::S(s) => s.on_timer(id, ctx),
                    E::L(l) => l.on_timer(id, ctx),
                }
            }
        }
        let topo = Topology::single_hop(2);
        let behaviors = vec![E::S(Slotter), E::L(Listener { got: Vec::new() })];
        let mut sim = Simulator::new(cfg(11), topo, behaviors);
        sim.run_until(SimTime::from_micros(30_000_000));
        let got = match sim.behavior(NodeId(1)) {
            E::L(l) => l.got.clone(),
            _ => unreachable!(),
        };
        // Queue at enqueue time holds all three (node hasn't begun
        // transmitting yet), so v2 then v3 replace within the queue → only
        // the latest version airs once.
        assert_eq!(got, vec![3], "queued versions must coalesce, got {got:?}");
        assert_eq!(sim.metrics().node(NodeId(0)).channel_accesses, 1);
    }

    #[test]
    fn crash_drops_state_and_restart_rejoins() {
        // Node 1 crashes with a timer pending and a frame in flight toward
        // it; neither must reach the restarted incarnation, but frames sent
        // after the restart must.
        let topo = Topology::single_hop(2);
        let behaviors = vec![Chatter::new(1, 50), Chatter::new(0, 50)];
        let mut sim = Simulator::new(cfg(21), topo, behaviors);
        sim.behavior_mut(NodeId(1)); // touch: both alive
        // Let node 0's frame get on the air, then kill 1 before delivery.
        sim.run_until(SimTime::from_micros(10));
        sim.crash_node(NodeId(1));
        assert!(sim.is_down(NodeId(1)));
        assert!(sim.try_behavior(NodeId(1)).is_none());
        assert_eq!(sim.behaviors().count(), 1, "only node 0 is live");
        sim.run_until(SimTime::from_micros(5_000_000));
        sim.restart_node(NodeId(1), Chatter::new(0, 50));
        assert!(!sim.is_down(NodeId(1)));
        assert!(
            sim.behavior(NodeId(1)).received.is_empty(),
            "pre-crash deliveries must not leak into the new incarnation"
        );
        // A fresh send from node 0 reaches the restarted node.
        sim.behavior_mut(NodeId(0)).to_send = 0;
        // Drive a new broadcast through the behavior API: reuse on_start by
        // restarting node 0 too (crash+restart is also how churn loops).
        sim.crash_node(NodeId(0));
        sim.restart_node(NodeId(0), Chatter::new(1, 50));
        sim.run_until(SimTime::from_micros(10_000_000));
        assert_eq!(sim.behavior(NodeId(1)).received, vec![(NodeId(0), 50)]);
    }

    #[test]
    fn crash_is_free_when_unused() {
        // The incarnation plumbing must not perturb crash-free runs: same
        // trace as `identical_seeds_give_identical_traces` guards, plus the
        // event counter still ticks for every dispatched event.
        let topo = Topology::single_hop(3);
        let behaviors: Vec<_> = (0..3).map(|_| Chatter::new(1, 60)).collect();
        let mut sim = Simulator::new(cfg(22), topo, behaviors);
        sim.run_until(SimTime::from_micros(30_000_000));
        assert!(sim.events_processed() > 0);
        for i in 0..3u16 {
            assert_eq!(sim.behavior(NodeId(i)).received.len(), 2);
        }
    }

    #[test]
    fn run_until_pred_stops_early() {
        let topo = Topology::single_hop(2);
        let behaviors = vec![Chatter::new(1, 10), Chatter::new(0, 10)];
        let mut sim = Simulator::new(cfg(8), topo, behaviors);
        let ok = sim.run_until_pred(SimTime::from_micros(60_000_000), |s| {
            !s.behavior(NodeId(1)).received.is_empty()
        });
        assert!(ok);
        assert!(sim.now() < SimTime::from_micros(2_000_000), "stopped at {}", sim.now());
    }

    #[test]
    fn queued_frames_serialize_on_the_channel() {
        // One sender, many frames: each channel access happens after the
        // previous airtime, so total elapsed >= frames * airtime.
        let topo = Topology::single_hop(2);
        let behaviors = vec![Chatter::new(5, 255), Chatter::new(0, 255)];
        let mut sim = Simulator::new(cfg(9), topo, behaviors);
        let deadline = SimTime::from_micros(60_000_000);
        sim.run_until_pred(deadline, |s| s.behavior(NodeId(1)).received.len() == 5);
        let airtime = RadioParams::default().airtime(255);
        assert!(sim.now().saturating_since(SimTime::ZERO) >= airtime * 5);
        let _ = VecDeque::<u8>::new(); // keep import used in this cfg
    }
}
