#![forbid(unsafe_code)]
//! # wbft-wireless — deterministic wireless-network simulator
//!
//! The testbed substrate of the ConsensusBatcher reproduction: a
//! discrete-event simulator of resource-constrained wireless networks in
//! the style of the paper's physical LoRa + STM32 deployment (§V-C),
//! modelling exactly the effects its evaluation measures:
//!
//! * **shared half-duplex channels** with CSMA/CA contention, random
//!   backoff, and emergent collisions ([`csma`], [`sim`]);
//! * **LoRa-calibrated airtime** — the hundreds-of-ms frame times that put
//!   consensus latencies in the tens of seconds ([`radio`]);
//! * **DMA buffer delivery** with the paper's packet-alignment strategy and
//!   its unaligned ablation ([`dma`]);
//! * **a serial CPU** that cryptographic operations charge virtual time to,
//!   so heavy threshold crypto delays packet processing exactly as on the
//!   paper's boards;
//! * **clusters and a routed leader overlay** for multi-hop deployments
//!   ([`topology`]);
//! * **asynchrony**: stochastic loss and adversarial (bounded) delivery
//!   delays — messages between honest nodes are eventually delivered,
//!   nothing more ([`adversary`]) — plus pluggable worst-case delivery
//!   schedulers that adaptively reorder and hold back frames within a hard
//!   per-delivery budget ([`sched`]).
//!
//! Protocol logic plugs in as sans-io [`NodeBehavior`] state machines; runs
//! are bit-for-bit deterministic for a fixed seed.
//!
//! ## Example
//!
//! ```rust
//! use wbft_wireless::{
//!     NodeBehavior, NodeCtx, Frame, SimConfig, Simulator, SimTime, Topology, ChannelId,
//! };
//! use bytes::Bytes;
//!
//! struct Hello { sender: bool, got: usize }
//! impl NodeBehavior for Hello {
//!     fn on_start(&mut self, ctx: &mut NodeCtx) {
//!         if self.sender {
//!             ctx.broadcast(ChannelId(0), Bytes::from_static(b"hi"), 2);
//!         }
//!     }
//!     fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) { self.got += 1; }
//!     fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
//! }
//!
//! let topo = Topology::single_hop(3);
//! let mut sim = Simulator::new(SimConfig::default(), topo,
//!     (0..3).map(|i| Hello { sender: i == 0, got: 0 }).collect());
//! sim.run_until(SimTime::from_micros(5_000_000));
//! assert!(sim.behaviors().all(|(id, b)| b.got == usize::from(id.0 != 0)));
//! ```

pub mod adversary;
pub mod behavior;
pub mod csma;
pub mod dma;
pub mod metrics;
pub mod radio;
pub mod sched;
pub mod sim;
pub mod time;
pub mod topology;

pub use adversary::{AdversaryConfig, LossModel};
pub use behavior::{Command, Frame, NodeBehavior, NodeCtx};
pub use csma::CsmaParams;
pub use dma::DmaParams;
pub use metrics::{Metrics, NodeMetrics};
pub use radio::RadioParams;
pub use sched::{Delivery, DeliveryScheduler, SchedConfig, SchedPolicy, SchedStats};
pub use sim::{SimConfig, Simulator};
pub use time::{SimDuration, SimTime};
pub use topology::{ChannelId, NodeId, Position, RoutingModel, Topology};
