//! Channel-level adversary and loss models.
//!
//! The asynchronous adversary of the paper (§III-A2) may delay messages
//! between any two nodes arbitrarily and reorder delivery, subject to the
//! standing assumption that messages between honest nodes are *eventually*
//! delivered. The simulator realizes this as (a) stochastic frame loss —
//! recovery is the NACK layer's job, so a lost frame is a bounded delay, not
//! a violation — and (b) targeted extra receive delays, clamped to a hard
//! per-delivery bound so the eventual-delivery assumption is *enforced*,
//! not merely documented. *Byzantine node behaviour* (equivocation, vote
//! flipping, silence) is implemented at the protocol layer, where the
//! protocol state lives. Adaptive worst-case scheduling lives in
//! [`sched`](crate::sched).

use crate::time::SimDuration;
use crate::topology::NodeId;
use rand::Rng;

/// Stochastic frame-loss model applied per (sender, receiver) delivery.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
#[derive(Default)]
pub enum LossModel {
    /// No losses beyond collisions.
    #[default]
    None,
    /// Every delivery independently lost with probability `p`.
    Uniform {
        /// Loss probability in `[0, 1)`.
        p: f64,
    },
    /// Asymmetric per-receiver loss (e.g. one node behind an obstacle).
    PerReceiver {
        /// `rates[node] = p` for that receiver; missing entries mean 0.
        rates: Vec<(NodeId, f64)>,
    },
}

/// Highest loss rate a *scenario* may configure. `p = 1.0` severs an
/// honest link permanently — no retransmission ever lands — which violates
/// the eventual-delivery assumption the protocols' liveness proofs rest
/// on; rates this close to 1 are already indistinguishable from that in
/// any finite run.
pub const MAX_SCENARIO_LOSS: f64 = 0.95;

impl LossModel {
    /// Rolls whether a delivery from `src` to `dst` is lost.
    pub fn is_lost(&self, _src: NodeId, dst: NodeId, rng: &mut impl Rng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Uniform { p } => rng.random_bool(*p),
            LossModel::PerReceiver { rates } => rates
                .iter()
                .find(|(n, _)| *n == dst)
                .map(|(_, p)| rng.random_bool(*p))
                .unwrap_or(false),
        }
    }

    /// Checks that every configured rate respects the model: finite,
    /// non-negative, and below [`MAX_SCENARIO_LOSS`] (strictly below 1, so
    /// every honest link eventually delivers). Scenario builders
    /// (`wbft_consensus::testbed::run`, sweep expansion) call this at
    /// build time and reject violating configs loudly instead of running a
    /// simulation whose correctness claims are vacuous.
    pub fn validate(&self) -> Result<(), String> {
        let check = |p: f64, what: &str| {
            if !p.is_finite() || !(0.0..=MAX_SCENARIO_LOSS).contains(&p) {
                Err(format!(
                    "{what} loss rate {p} outside [0, {MAX_SCENARIO_LOSS}] — \
                     rates at or near 1 sever the link and break eventual delivery"
                ))
            } else {
                Ok(())
            }
        };
        match self {
            LossModel::None => Ok(()),
            LossModel::Uniform { p } => check(*p, "uniform"),
            LossModel::PerReceiver { rates } => {
                for (node, p) in rates {
                    check(*p, &format!("per-receiver ({node})"))?;
                }
                Ok(())
            }
        }
    }
}

/// Default hard cap on the aggregate extra delay of one delivery when the
/// config doesn't set its own: comfortably above every stock jitter and
/// targeted-delay setting, far below run deadlines.
pub const DEFAULT_DELAY_BOUND: SimDuration = SimDuration::from_secs(30);

/// Adversarial scheduling of honest-to-honest deliveries: extra receive
/// delays, clamped to [`AdversaryConfig::delay_bound`] so that eventual
/// delivery holds whatever `jitter`/`targeted` are set to.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AdversaryConfig {
    /// Random extra delay in `[0, max)` added to every delivery —
    /// asynchrony "weather".
    pub jitter: Option<SimDuration>,
    /// Targeted slow-down: deliveries *to* these nodes get the extra delay
    /// (modelling an adversary throttling specific victims).
    pub targeted: Vec<(NodeId, SimDuration)>,
    /// Hard cap on the aggregate extra delay of one delivery; `None` means
    /// [`DEFAULT_DELAY_BOUND`]. [`AdversaryConfig::extra_delay`] clamps to
    /// it unconditionally — a config cannot opt out of bounded delays.
    pub bound: Option<SimDuration>,
}

impl AdversaryConfig {
    /// No adversarial scheduling.
    pub fn benign() -> Self {
        AdversaryConfig::default()
    }

    /// Uniform random delivery jitter up to `max`.
    pub fn with_jitter(max: SimDuration) -> Self {
        AdversaryConfig { jitter: Some(max), targeted: Vec::new(), bound: None }
    }

    /// The enforced per-delivery delay cap.
    pub fn delay_bound(&self) -> SimDuration {
        self.bound.unwrap_or(DEFAULT_DELAY_BOUND)
    }

    /// Checks the config is honest about its delays: the bound must be
    /// positive and no configured component may exceed it (a `targeted`
    /// entry above the bound would silently clamp, making the config lie
    /// about the delay it imposes). Scenario builders call this at build
    /// time.
    pub fn validate(&self) -> Result<(), String> {
        let bound = self.delay_bound();
        if bound.as_micros() == 0 {
            return Err("adversary delay bound must be positive".into());
        }
        if let Some(j) = self.jitter {
            if j > bound {
                return Err(format!(
                    "jitter {}µs exceeds the delay bound {}µs",
                    j.as_micros(),
                    bound.as_micros()
                ));
            }
        }
        for (node, d) in &self.targeted {
            if *d > bound {
                return Err(format!(
                    "targeted delay {}µs for {node} exceeds the delay bound {}µs",
                    d.as_micros(),
                    bound.as_micros()
                ));
            }
        }
        Ok(())
    }

    /// The extra delay for one delivery, clamped to
    /// [`AdversaryConfig::delay_bound`].
    pub fn extra_delay(&self, _src: NodeId, dst: NodeId, rng: &mut impl Rng) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if let Some(max) = self.jitter {
            if max.as_micros() > 0 {
                extra += SimDuration::from_micros(rng.random_range(0..max.as_micros()));
            }
        }
        if let Some((_, d)) = self.targeted.iter().find(|(n, _)| *n == dst) {
            extra += *d;
        }
        extra.min(self.delay_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha12Rng {
        rand_chacha::ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn none_never_loses() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(!LossModel::None.is_lost(NodeId(0), NodeId(1), &mut r));
        }
    }

    #[test]
    fn uniform_loss_rate_is_plausible() {
        let mut r = rng();
        let m = LossModel::Uniform { p: 0.3 };
        let lost = (0..10_000).filter(|_| m.is_lost(NodeId(0), NodeId(1), &mut r)).count();
        assert!((2_700..3_300).contains(&lost), "lost {lost}/10000");
    }

    #[test]
    fn per_receiver_only_affects_victim() {
        let mut r = rng();
        let m = LossModel::PerReceiver { rates: vec![(NodeId(2), 0.9)] };
        let victim =
            (0..1_000).filter(|_| m.is_lost(NodeId(0), NodeId(2), &mut r)).count();
        let other =
            (0..1_000).filter(|_| m.is_lost(NodeId(0), NodeId(1), &mut r)).count();
        assert!((850..=950).contains(&victim), "victim lost {victim}/1000");
        assert_eq!(other, 0, "non-victim must never roll a loss");
    }

    #[test]
    fn loss_validation_enforces_eventual_delivery() {
        assert!(LossModel::None.validate().is_ok());
        assert!(LossModel::Uniform { p: 0.3 }.validate().is_ok());
        assert!(LossModel::Uniform { p: MAX_SCENARIO_LOSS }.validate().is_ok());
        // The bug this guards against: p = 1.0 permanently severs links.
        assert!(LossModel::Uniform { p: 1.0 }.validate().is_err());
        assert!(LossModel::Uniform { p: 0.97 }.validate().is_err());
        assert!(LossModel::Uniform { p: -0.1 }.validate().is_err());
        assert!(LossModel::Uniform { p: f64::NAN }.validate().is_err());
        assert!(LossModel::PerReceiver { rates: vec![(NodeId(1), 0.5)] }.validate().is_ok());
        assert!(LossModel::PerReceiver { rates: vec![(NodeId(1), 1.0)] }
            .validate()
            .is_err());
    }

    #[test]
    fn benign_adversary_adds_no_delay() {
        let mut r = rng();
        let a = AdversaryConfig::benign();
        assert_eq!(a.extra_delay(NodeId(0), NodeId(1), &mut r), SimDuration::ZERO);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut r = rng();
        let a = AdversaryConfig::with_jitter(SimDuration::from_millis(10));
        for _ in 0..100 {
            let d = a.extra_delay(NodeId(0), NodeId(1), &mut r);
            assert!(d < SimDuration::from_millis(10));
        }
    }

    #[test]
    fn targeted_delay_stacks_on_jitter() {
        let mut r = rng();
        let a = AdversaryConfig {
            jitter: None,
            targeted: vec![(NodeId(3), SimDuration::from_secs(1))],
            bound: None,
        };
        assert_eq!(a.extra_delay(NodeId(0), NodeId(3), &mut r), SimDuration::from_secs(1));
        assert_eq!(a.extra_delay(NodeId(0), NodeId(2), &mut r), SimDuration::ZERO);
    }

    #[test]
    fn aggregate_delay_is_clamped_to_the_bound() {
        let mut r = rng();
        // The bug this guards against: `targeted` used to be unchecked, so
        // a config could impose unbounded delay while claiming eventual
        // delivery. Now even a delay far above the bound is clamped.
        let a = AdversaryConfig {
            jitter: Some(SimDuration::from_secs(2)),
            targeted: vec![(NodeId(1), SimDuration::from_secs(3_600))],
            bound: Some(SimDuration::from_secs(4)),
        };
        for _ in 0..50 {
            let d = a.extra_delay(NodeId(0), NodeId(1), &mut r);
            assert_eq!(d, SimDuration::from_secs(4), "aggregate must clamp to the bound");
        }
        // Unset bound falls back to the named default.
        let b = AdversaryConfig {
            jitter: None,
            targeted: vec![(NodeId(1), SimDuration::from_secs(10_000))],
            bound: None,
        };
        assert_eq!(b.extra_delay(NodeId(0), NodeId(1), &mut r), DEFAULT_DELAY_BOUND);
    }

    #[test]
    fn adversary_validation_rejects_dishonest_configs() {
        assert!(AdversaryConfig::benign().validate().is_ok());
        assert!(AdversaryConfig::with_jitter(SimDuration::from_millis(10)).validate().is_ok());
        let over_jitter = AdversaryConfig {
            jitter: Some(SimDuration::from_secs(5)),
            targeted: Vec::new(),
            bound: Some(SimDuration::from_secs(1)),
        };
        assert!(over_jitter.validate().is_err());
        let over_target = AdversaryConfig {
            jitter: None,
            targeted: vec![(NodeId(0), SimDuration::from_secs(120))],
            bound: None,
        };
        assert!(over_target.validate().is_err(), "target above the default bound");
        let zero_bound = AdversaryConfig {
            jitter: None,
            targeted: Vec::new(),
            bound: Some(SimDuration::ZERO),
        };
        assert!(zero_bound.validate().is_err());
    }
}
