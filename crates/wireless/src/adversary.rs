//! Channel-level adversary and loss models.
//!
//! The asynchronous adversary of the paper (§III-A2) may delay messages
//! between any two nodes arbitrarily and reorder delivery, subject to the
//! standing assumption that messages between honest nodes are *eventually*
//! delivered. The simulator realizes this as (a) stochastic frame loss —
//! recovery is the NACK layer's job, so a lost frame is a bounded delay, not
//! a violation — and (b) targeted extra receive delays. *Byzantine node
//! behaviour* (equivocation, vote flipping, silence) is implemented at the
//! protocol layer, where the protocol state lives.

use crate::time::SimDuration;
use crate::topology::NodeId;
use rand::Rng;

/// Stochastic frame-loss model applied per (sender, receiver) delivery.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
#[derive(Default)]
pub enum LossModel {
    /// No losses beyond collisions.
    #[default]
    None,
    /// Every delivery independently lost with probability `p`.
    Uniform {
        /// Loss probability in `[0, 1)`.
        p: f64,
    },
    /// Asymmetric per-receiver loss (e.g. one node behind an obstacle).
    PerReceiver {
        /// `rates[node] = p` for that receiver; missing entries mean 0.
        rates: Vec<(NodeId, f64)>,
    },
}

impl LossModel {
    /// Rolls whether a delivery from `src` to `dst` is lost.
    pub fn is_lost(&self, _src: NodeId, dst: NodeId, rng: &mut impl Rng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Uniform { p } => rng.random_bool(*p),
            LossModel::PerReceiver { rates } => rates
                .iter()
                .find(|(n, _)| *n == dst)
                .map(|(_, p)| rng.random_bool(*p))
                .unwrap_or(false),
        }
    }
}


/// Adversarial scheduling of honest-to-honest deliveries: extra receive
/// delays, bounded so that eventual delivery holds.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AdversaryConfig {
    /// Random extra delay in `[0, max)` added to every delivery —
    /// asynchrony "weather".
    pub jitter: Option<SimDuration>,
    /// Targeted slow-down: deliveries *to* these nodes get the extra delay
    /// (modelling an adversary throttling specific victims).
    pub targeted: Vec<(NodeId, SimDuration)>,
}

impl AdversaryConfig {
    /// No adversarial scheduling.
    pub fn benign() -> Self {
        AdversaryConfig::default()
    }

    /// Uniform random delivery jitter up to `max`.
    pub fn with_jitter(max: SimDuration) -> Self {
        AdversaryConfig { jitter: Some(max), targeted: Vec::new() }
    }

    /// The extra delay for one delivery.
    pub fn extra_delay(&self, _src: NodeId, dst: NodeId, rng: &mut impl Rng) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if let Some(max) = self.jitter {
            if max.as_micros() > 0 {
                extra += SimDuration::from_micros(rng.random_range(0..max.as_micros()));
            }
        }
        if let Some((_, d)) = self.targeted.iter().find(|(n, _)| *n == dst) {
            extra += *d;
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha12Rng {
        rand_chacha::ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn none_never_loses() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(!LossModel::None.is_lost(NodeId(0), NodeId(1), &mut r));
        }
    }

    #[test]
    fn uniform_loss_rate_is_plausible() {
        let mut r = rng();
        let m = LossModel::Uniform { p: 0.3 };
        let lost = (0..10_000).filter(|_| m.is_lost(NodeId(0), NodeId(1), &mut r)).count();
        assert!((2_700..3_300).contains(&lost), "lost {lost}/10000");
    }

    #[test]
    fn per_receiver_only_affects_victim() {
        let mut r = rng();
        let m = LossModel::PerReceiver { rates: vec![(NodeId(2), 1.0)] };
        assert!(m.is_lost(NodeId(0), NodeId(2), &mut r));
        assert!(!m.is_lost(NodeId(0), NodeId(1), &mut r));
    }

    #[test]
    fn benign_adversary_adds_no_delay() {
        let mut r = rng();
        let a = AdversaryConfig::benign();
        assert_eq!(a.extra_delay(NodeId(0), NodeId(1), &mut r), SimDuration::ZERO);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut r = rng();
        let a = AdversaryConfig::with_jitter(SimDuration::from_millis(10));
        for _ in 0..100 {
            let d = a.extra_delay(NodeId(0), NodeId(1), &mut r);
            assert!(d < SimDuration::from_millis(10));
        }
    }

    #[test]
    fn targeted_delay_stacks_on_jitter() {
        let mut r = rng();
        let a = AdversaryConfig {
            jitter: None,
            targeted: vec![(NodeId(3), SimDuration::from_secs(1))],
        };
        assert_eq!(a.extra_delay(NodeId(0), NodeId(3), &mut r), SimDuration::from_secs(1));
        assert_eq!(a.extra_delay(NodeId(0), NodeId(2), &mut r), SimDuration::ZERO);
    }
}
