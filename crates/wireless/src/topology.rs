//! Node placement, radio channels, reachability, and clusters.
//!
//! Single-hop deployments place all nodes within one communication radius on
//! one channel. Multi-hop deployments (paper §V-B) partition nodes into
//! clusters, each a single-hop network on its own channel; cluster leaders
//! additionally join a global channel whose links model the
//! Byzantine-resilient routing overlay between clusters.

use crate::time::SimDuration;

/// Identifies a node in the simulation (dense, zero-based).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Zero-based index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a radio channel. Frames only reach nodes listening on the
/// same channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct ChannelId(pub u8);

/// A 2-D position in metres.
#[derive(Clone, Copy, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Per-link extra latency modelling the multi-hop routing overlay on the
/// global channel (paper: leaders communicate "through a routing protocol").
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingModel {
    /// Mean number of relay hops between two overlay members.
    pub mean_hops: f64,
    /// Per-hop forwarding latency.
    pub per_hop: SimDuration,
    /// Airtime stretch: each logical broadcast occupies the channel this
    /// many times longer than a single-hop frame (relays re-transmit).
    pub airtime_stretch: f64,
}

impl RoutingModel {
    /// Direct single-hop communication: no overlay.
    pub fn direct() -> Self {
        RoutingModel { mean_hops: 1.0, per_hop: SimDuration::ZERO, airtime_stretch: 1.0 }
    }

    /// A small routed overlay (cluster leaders a few hops apart).
    pub fn leader_overlay() -> Self {
        RoutingModel {
            mean_hops: 2.0,
            per_hop: SimDuration::from_millis(40),
            airtime_stretch: 1.6,
        }
    }

    /// Extra receive latency a routed frame pays beyond its airtime.
    pub fn extra_latency(&self) -> SimDuration {
        let hops = (self.mean_hops - 1.0).max(0.0);
        SimDuration::from_micros((hops * self.per_hop.as_micros() as f64) as u64)
    }
}

impl Default for RoutingModel {
    fn default() -> Self {
        Self::direct()
    }
}

/// Static description of the deployment's geometry and channel plan.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    positions: Vec<Position>,
    comm_radius: f64,
    /// `channels[node]` — the channels the node's radio listens on. The
    /// radio is still half-duplex: it hears all its channels but a
    /// transmission on any of them blocks reception on all.
    channels: Vec<Vec<ChannelId>>,
    /// Cluster id per node (single-hop deployments use one cluster).
    cluster_of: Vec<usize>,
    /// Routing model per channel (global overlay channels pay extra).
    routing: Vec<(ChannelId, RoutingModel)>,
}

impl Topology {
    /// A single-hop network of `n` nodes placed within one radius on
    /// channel 0.
    pub fn single_hop(n: usize) -> Self {
        let positions = (0..n)
            .map(|i| {
                let angle = i as f64 / n as f64 * std::f64::consts::TAU;
                Position { x: angle.cos() * 0.4, y: angle.sin() * 0.4 }
            })
            .collect();
        Topology {
            positions,
            comm_radius: 1.0,
            channels: vec![vec![ChannelId(0)]; n],
            cluster_of: vec![0; n],
            routing: vec![(ChannelId(0), RoutingModel::direct())],
        }
    }

    /// A clustered multi-hop network: `clusters` single-hop clusters of
    /// `per_cluster` nodes each. Cluster `k` occupies channel `k+1`;
    /// channel 0 is the global leader-overlay channel with
    /// [`RoutingModel::leader_overlay`]. Nodes are *not* initially joined
    /// to the global channel — leaders join it at runtime via
    /// `NodeCtx::join_channel`.
    pub fn clustered(clusters: usize, per_cluster: usize) -> Self {
        let mut positions = Vec::new();
        let mut channels = Vec::new();
        let mut cluster_of = Vec::new();
        for c in 0..clusters {
            let cx = (c % 2) as f64 * 10.0;
            let cy = (c / 2) as f64 * 10.0;
            for i in 0..per_cluster {
                let angle = i as f64 / per_cluster as f64 * std::f64::consts::TAU;
                positions.push(Position { x: cx + angle.cos() * 0.4, y: cy + angle.sin() * 0.4 });
                channels.push(vec![ChannelId(c as u8 + 1)]);
                cluster_of.push(c);
            }
        }
        let mut routing = vec![(ChannelId(0), RoutingModel::leader_overlay())];
        for c in 0..clusters {
            routing.push((ChannelId(c as u8 + 1), RoutingModel::direct()));
        }
        Topology { positions, comm_radius: 1.0, channels, cluster_of, routing }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Cluster id of a node.
    pub fn cluster_of(&self, node: NodeId) -> usize {
        self.cluster_of[node.index()]
    }

    /// All node ids in a cluster, ascending.
    pub fn cluster_members(&self, cluster: usize) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&i| self.cluster_of[i] == cluster)
            .map(|i| NodeId(i as u16))
            .collect()
    }

    /// Channels node currently listens on (mutable at runtime through the
    /// simulator, e.g. when a leader joins the global channel).
    pub fn channels_of(&self, node: NodeId) -> &[ChannelId] {
        &self.channels[node.index()]
    }

    /// Adds a channel to a node's listen set (idempotent).
    pub fn join_channel(&mut self, node: NodeId, channel: ChannelId) {
        let chs = &mut self.channels[node.index()];
        if !chs.contains(&channel) {
            chs.push(channel);
        }
    }

    /// Removes a channel from a node's listen set.
    pub fn leave_channel(&mut self, node: NodeId, channel: ChannelId) {
        self.channels[node.index()].retain(|c| *c != channel);
    }

    /// Whether `b` can hear a transmission from `a` on `channel`:
    /// co-channel and within radius — except on *routed* channels
    /// (stretch > 1), where the overlay forwards frames regardless of
    /// geometric distance.
    pub fn reaches(&self, a: NodeId, b: NodeId, channel: ChannelId) -> bool {
        if a == b {
            return false;
        }
        if !self.channels[a.index()].contains(&channel)
            || !self.channels[b.index()].contains(&channel)
        {
            return false;
        }
        let model = self.routing_for(channel);
        if model.airtime_stretch > 1.0 {
            return true; // routed overlay: reachability by forwarding
        }
        self.positions[a.index()].distance(&self.positions[b.index()]) <= self.comm_radius
    }

    /// The routing model of a channel.
    pub fn routing_for(&self, channel: ChannelId) -> RoutingModel {
        self.routing
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, m)| *m)
            .unwrap_or_else(RoutingModel::direct)
    }

    /// Overrides the communication radius (defaults to 1 m, matching the
    /// paper's low-power-antenna setup).
    pub fn with_comm_radius(mut self, radius: f64) -> Self {
        self.comm_radius = radius;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hop_all_nodes_reach_each_other() {
        let t = Topology::single_hop(4);
        for a in 0..4u16 {
            for b in 0..4u16 {
                if a != b {
                    assert!(t.reaches(NodeId(a), NodeId(b), ChannelId(0)), "{a}->{b}");
                }
            }
        }
        assert!(!t.reaches(NodeId(0), NodeId(0), ChannelId(0)), "no self-reception");
    }

    #[test]
    fn clustered_nodes_only_reach_cluster_peers() {
        let t = Topology::clustered(4, 4);
        assert_eq!(t.len(), 16);
        // Node 0 (cluster 0, channel 1) reaches node 1 but not node 4
        // (cluster 1, channel 2).
        assert!(t.reaches(NodeId(0), NodeId(1), ChannelId(1)));
        assert!(!t.reaches(NodeId(0), NodeId(4), ChannelId(1)));
        assert!(!t.reaches(NodeId(0), NodeId(4), ChannelId(2)));
        assert_eq!(t.cluster_of(NodeId(5)), 1);
        assert_eq!(t.cluster_members(2), vec![NodeId(8), NodeId(9), NodeId(10), NodeId(11)]);
    }

    #[test]
    fn leaders_reach_across_clusters_on_global_channel() {
        let mut t = Topology::clustered(4, 4);
        // Leaders of clusters 0 and 1 join the overlay channel.
        t.join_channel(NodeId(0), ChannelId(0));
        t.join_channel(NodeId(4), ChannelId(0));
        // Despite being 10 m apart (radius is 1 m), the routed overlay
        // connects them.
        assert!(t.reaches(NodeId(0), NodeId(4), ChannelId(0)));
        t.leave_channel(NodeId(4), ChannelId(0));
        assert!(!t.reaches(NodeId(0), NodeId(4), ChannelId(0)));
    }

    #[test]
    fn routing_model_latency() {
        let m = RoutingModel::leader_overlay();
        assert!(m.extra_latency().as_micros() > 0);
        assert_eq!(RoutingModel::direct().extra_latency(), SimDuration::ZERO);
    }

    #[test]
    fn join_channel_is_idempotent() {
        let mut t = Topology::single_hop(2);
        t.join_channel(NodeId(0), ChannelId(7));
        t.join_channel(NodeId(0), ChannelId(7));
        assert_eq!(t.channels_of(NodeId(0)).iter().filter(|c| c.0 == 7).count(), 1);
    }
}
