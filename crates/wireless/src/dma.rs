//! The DMA-buffer model (paper §IV-B2).
//!
//! On the paper's STM32 boards, received frames land in a DMA ring buffer of
//! size `2D` and reach the CPU on *half* or *full* interrupts. Without care,
//! short frames accumulate until the half-buffer mark before the CPU sees
//! them, adding latency and — with slow crypto on the critical path —
//! congestion. ConsensusBatcher's *packet alignment* pads every frame to at
//! least `D`, so each arrival immediately crosses an interrupt threshold and
//! is handed to the CPU at once.
//!
//! The simulator reproduces both regimes:
//!
//! * **aligned** — every frame is delivered to the protocol after a fixed
//!   interrupt-service delay;
//! * **unaligned** — frames shorter than `D` wait in the buffer until
//!   another arrival fills the half-buffer or a flush timeout expires
//!   (modelling the board's idle-line timeout).

use crate::time::SimDuration;

/// DMA buffer behaviour for every node in a deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DmaParams {
    /// Half-buffer size `D` in bytes; the buffer holds `2D`.
    pub half_buffer_bytes: usize,
    /// Whether ConsensusBatcher's packet-alignment strategy is active.
    pub alignment: bool,
    /// Interrupt service + copy-out latency charged per delivery.
    pub interrupt_us: u64,
    /// Idle-line flush timeout for the unaligned regime.
    pub flush_timeout_us: u64,
}

impl DmaParams {
    /// The paper's configuration: alignment on, `D` = half the radio frame.
    pub fn aligned() -> Self {
        DmaParams {
            half_buffer_bytes: 128,
            alignment: true,
            interrupt_us: 400,
            flush_timeout_us: 50_000,
        }
    }

    /// Ablation configuration with alignment disabled.
    pub fn unaligned() -> Self {
        DmaParams { alignment: false, ..Self::aligned() }
    }

    /// Extra delivery delay for a frame of `len` bytes that arrives when
    /// `buffered` bytes are already pending.
    ///
    /// Returns `(delay, flush)`: `flush` is true when this arrival crosses an
    /// interrupt threshold and drains the buffer (delivering everything
    /// pending), false when the frame parks in the buffer awaiting either a
    /// later arrival or the flush timeout.
    pub fn arrival(&self, len: usize, buffered: usize) -> (SimDuration, bool) {
        if self.alignment {
            // Padded to >= D: every frame crosses the half mark immediately.
            (SimDuration::from_micros(self.interrupt_us), true)
        } else if buffered + len >= self.half_buffer_bytes {
            (SimDuration::from_micros(self.interrupt_us), true)
        } else {
            (SimDuration::from_micros(self.flush_timeout_us), false)
        }
    }
}

impl Default for DmaParams {
    fn default() -> Self {
        Self::aligned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_always_flushes_fast() {
        let d = DmaParams::aligned();
        let (delay, flush) = d.arrival(10, 0);
        assert!(flush);
        assert_eq!(delay.as_micros(), d.interrupt_us);
        let (delay2, flush2) = d.arrival(255, 100);
        assert!(flush2);
        assert_eq!(delay2, delay);
    }

    #[test]
    fn unaligned_small_frames_wait() {
        let d = DmaParams::unaligned();
        let (delay, flush) = d.arrival(10, 0);
        assert!(!flush);
        assert_eq!(delay.as_micros(), d.flush_timeout_us);
    }

    #[test]
    fn unaligned_flushes_when_half_buffer_fills() {
        let d = DmaParams::unaligned();
        let (delay, flush) = d.arrival(100, 60);
        assert!(flush, "100+60 >= 128 must flush");
        assert_eq!(delay.as_micros(), d.interrupt_us);
    }

    #[test]
    fn unaligned_large_frames_flush_immediately() {
        let d = DmaParams::unaligned();
        let (_, flush) = d.arrival(200, 0);
        assert!(flush);
    }
}
