//! The radio (physical-layer) model: airtime as a function of frame length.
//!
//! The paper's evaluation runs on LoRa radios with low-power antennas
//! (§V-C); consensus latencies in the tens of seconds follow directly from
//! LoRa's multi-hundred-millisecond frame airtimes. The default parameters
//! below correspond to a LoRa SF7/125 kHz-class link (~5.5 kbit/s effective,
//! 255-byte maximum frame); any other radio (Wi-Fi, BLE) is expressible by
//! changing the numbers.

use crate::time::SimDuration;

/// Physical-layer parameters of all radios in a deployment.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RadioParams {
    /// Effective payload bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Fixed per-frame overhead (preamble + sync + PHY header).
    pub preamble_us: u64,
    /// Maximum frame payload in bytes; longer sends must be fragmented by
    /// the caller.
    pub max_frame_bytes: usize,
}

impl RadioParams {
    /// LoRa SF7 / 125 kHz-class defaults (the paper's testbed radio class).
    pub fn lora_sf7() -> Self {
        RadioParams { bitrate_bps: 5_470, preamble_us: 12_500, max_frame_bytes: 255 }
    }

    /// A faster short-range radio (BLE-class), useful in tests to keep
    /// simulated times small.
    pub fn ble_class() -> Self {
        RadioParams { bitrate_bps: 250_000, preamble_us: 300, max_frame_bytes: 255 }
    }

    /// Time on air for a frame of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`RadioParams::max_frame_bytes`] — callers
    /// must fragment first; silently clamping would corrupt the
    /// channel-occupancy accounting the experiments depend on.
    pub fn airtime(&self, len: usize) -> SimDuration {
        assert!(
            len <= self.max_frame_bytes,
            "frame of {len} bytes exceeds radio maximum {}",
            self.max_frame_bytes
        );
        let bits = (len as u64) * 8;
        let us = bits * 1_000_000 / self.bitrate_bps;
        SimDuration::from_micros(self.preamble_us + us)
    }
}

impl Default for RadioParams {
    fn default() -> Self {
        Self::lora_sf7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lora_full_frame_is_hundreds_of_ms() {
        let r = RadioParams::lora_sf7();
        let t = r.airtime(255);
        // 255 B at ~5.47 kbit/s ≈ 373 ms + preamble.
        assert!(t.as_micros() > 300_000, "{t:?}");
        assert!(t.as_micros() < 500_000, "{t:?}");
    }

    #[test]
    fn airtime_is_monotone_in_length() {
        let r = RadioParams::lora_sf7();
        let mut prev = SimDuration::ZERO;
        for len in [0, 1, 10, 100, 255] {
            let t = r.airtime(len);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn zero_length_frame_still_pays_preamble() {
        let r = RadioParams::lora_sf7();
        assert_eq!(r.airtime(0).as_micros(), r.preamble_us);
    }

    #[test]
    #[should_panic(expected = "exceeds radio maximum")]
    fn oversize_frame_panics() {
        RadioParams::lora_sf7().airtime(256);
    }
}
