//! The sans-io contract between protocol logic and the simulator.
//!
//! A [`NodeBehavior`] is a state machine driven by three callbacks
//! (`on_start`, `on_frame`, `on_timer`). It never touches the network
//! directly; it issues commands through [`NodeCtx`] (broadcast a frame, set
//! a timer, charge virtual CPU time for crypto work, join/leave a channel).
//! The same protocol code therefore runs identically under this simulator
//! and under any real transport that honours the contract.

use crate::time::{SimDuration, SimTime};
use crate::topology::{ChannelId, NodeId};
use bytes::Bytes;
use rand_chacha::ChaCha12Rng;

/// A frame as seen by a receiving node.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The transmitting node.
    pub src: NodeId,
    /// Channel it was heard on.
    pub channel: ChannelId,
    /// The payload bytes (already validated by the PHY; corruption is
    /// modelled as loss, not bit errors).
    pub payload: Bytes,
    /// The nominal wire length in bytes — what this packet would occupy
    /// with the paper's signature sizes (airtime and byte counters use
    /// this, not `payload.len()`; see `wbft-net`).
    pub nominal_len: usize,
}

/// Commands a behavior can issue during a callback; applied by the driving
/// runtime (the simulator, or a real transport) after the callback returns.
///
/// This enum is the full sans-io contract surface: any runtime that honours
/// these four commands plus the three [`NodeBehavior`] callbacks runs the
/// same protocol code the simulator does. External runtimes obtain them via
/// [`NodeCtx::external`] / [`NodeCtx::finish`].
#[derive(Clone, Debug)]
pub enum Command {
    /// Broadcast `payload` on `channel`; `nominal_len` is the paper-sized
    /// byte count for airtime/byte accounting, and frames sharing a `slot`
    /// may supersede queued older versions (transports without a transmit
    /// queue may ignore `slot`).
    Broadcast {
        /// Target channel.
        channel: ChannelId,
        /// Frame payload.
        payload: Bytes,
        /// Nominal wire length in bytes.
        nominal_len: usize,
        /// Transmit-queue coalescing slot, if any.
        slot: Option<u64>,
    },
    /// Deliver `on_timer(id)` after `after`.
    SetTimer {
        /// Delay from now.
        after: SimDuration,
        /// Timer id handed back to the behavior.
        id: u64,
    },
    /// Start listening on a channel.
    JoinChannel(ChannelId),
    /// Stop listening on a channel.
    LeaveChannel(ChannelId),
}

/// The execution context handed to every behavior callback.
pub struct NodeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut ChaCha12Rng,
    pub(crate) cmds: Vec<Command>,
    pub(crate) charged: SimDuration,
}

impl<'a> NodeCtx<'a> {
    /// Builds a context for an *external* runtime (a real transport driving
    /// a [`NodeBehavior`] outside the simulator).
    ///
    /// `now` is whatever clock the runtime maps onto [`SimTime`] — a real
    /// transport uses monotonic micros since process start. After the
    /// callback returns, the runtime applies the issued [`Command`]s from
    /// [`NodeCtx::finish`]. The simulator constructs its contexts
    /// internally; this constructor exists solely for other runtimes.
    pub fn external(now: SimTime, node: NodeId, rng: &'a mut ChaCha12Rng) -> NodeCtx<'a> {
        NodeCtx { now, node, rng, cmds: Vec::new(), charged: SimDuration::ZERO }
    }

    /// Consumes the context, returning the commands the callback issued (in
    /// issue order) and the virtual CPU time it charged.
    pub fn finish(self) -> (Vec<Command>, SimDuration) {
        (self.cmds, self.charged)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queues a broadcast frame on `channel`. The frame enters this node's
    /// transmit queue and contends for the channel via CSMA; `nominal_len`
    /// is the wire length used for airtime (callers take it from the packet
    /// codec).
    pub fn broadcast(&mut self, channel: ChannelId, payload: Bytes, nominal_len: usize) {
        self.cmds.push(Command::Broadcast { channel, payload, nominal_len, slot: None });
    }

    /// Queues a broadcast like [`NodeCtx::broadcast`], but if a frame with
    /// the same `slot` is still waiting in this node's transmit queue it is
    /// *replaced* instead of queued behind. This models updating a combined
    /// ConsensusBatcher packet in the radio buffer before it wins the
    /// channel: stale state never wastes airtime, and state changes that
    /// pile up behind a busy channel coalesce into one channel access.
    pub fn broadcast_slot(
        &mut self,
        channel: ChannelId,
        payload: Bytes,
        nominal_len: usize,
        slot: u64,
    ) {
        self.cmds.push(Command::Broadcast { channel, payload, nominal_len, slot: Some(slot) });
    }

    /// Schedules `on_timer(id)` after `after` (subject to CPU availability).
    pub fn set_timer(&mut self, after: SimDuration, id: u64) {
        self.cmds.push(Command::SetTimer { after, id });
    }

    /// Charges virtual CPU time (crypto, parsing). Subsequent frame
    /// deliveries and timers on this node are delayed until the CPU frees
    /// up, and broadcasts issued by this callback enter the transmit queue
    /// only after the charged time has elapsed.
    pub fn charge_cpu(&mut self, cost: SimDuration) {
        self.charged += cost;
    }

    /// Starts listening on an additional channel (e.g. a cluster leader
    /// joining the global consensus overlay).
    pub fn join_channel(&mut self, channel: ChannelId) {
        self.cmds.push(Command::JoinChannel(channel));
    }

    /// Stops listening on a channel.
    pub fn leave_channel(&mut self, channel: ChannelId) {
        self.cmds.push(Command::LeaveChannel(channel));
    }

    /// Deterministic per-simulation randomness.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }
}

/// Protocol logic driven by the simulator. See the module docs.
pub trait NodeBehavior {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut NodeCtx);

    /// Called for every frame that survives the channel, half-duplex, DMA
    /// and loss models.
    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeCtx);

    /// Called when a timer set via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx);
}

impl NodeBehavior for Box<dyn NodeBehavior> {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        (**self).on_start(ctx)
    }
    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeCtx) {
        (**self).on_frame(frame, ctx)
    }
    fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
        (**self).on_timer(id, ctx)
    }
}
