//! Virtual time for the discrete-event simulation, in microseconds.

/// An instant of simulated time (µs since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (µs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since simulation start.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Raw microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Component-wise maximum.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::from_micros(1_000);
        let d = SimDuration::from_millis(2);
        assert_eq!(t + d, SimTime::from_micros(3_000));
        assert!(t < t + d);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_micros(2_500_000)), "2.500s");
    }
}
