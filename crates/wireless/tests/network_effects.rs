//! Integration tests of the simulator's network-effect models: DMA
//! alignment ablation, collision emergence under synchronized senders,
//! hidden terminals, and the routed leader overlay.

use bytes::Bytes;
use wbft_wireless::{
    ChannelId, DmaParams, Frame, NodeBehavior, NodeCtx, NodeId, SimConfig,
    SimDuration, SimTime, Simulator, Topology,
};

/// Sends `count` short frames spaced by `gap`, records receive times.
struct Pulser {
    count: usize,
    gap: SimDuration,
    sent: usize,
    received_at: Vec<SimTime>,
}

impl Pulser {
    fn sender(count: usize, gap: SimDuration) -> Self {
        Pulser { count, gap, sent: 0, received_at: Vec::new() }
    }
    fn listener() -> Self {
        Pulser { count: 0, gap: SimDuration::ZERO, sent: 0, received_at: Vec::new() }
    }
}

impl NodeBehavior for Pulser {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        if self.count > 0 {
            ctx.set_timer(self.gap, 1);
        }
    }
    fn on_frame(&mut self, _f: &Frame, ctx: &mut NodeCtx) {
        self.received_at.push(ctx.now());
    }
    fn on_timer(&mut self, _id: u64, ctx: &mut NodeCtx) {
        if self.sent < self.count {
            self.sent += 1;
            ctx.broadcast(ChannelId(0), Bytes::from_static(&[7; 20]), 20);
            ctx.set_timer(self.gap, 1);
        }
    }
}

fn run_dma(dma: DmaParams) -> Vec<SimTime> {
    let topo = Topology::single_hop(2);
    let behaviors = vec![
        Pulser::sender(4, SimDuration::from_millis(2_000)),
        Pulser::listener(),
    ];
    let cfg = SimConfig { dma, seed: 9, ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, topo, behaviors);
    sim.run_until(SimTime::from_micros(60_000_000));
    sim.behavior(NodeId(1)).received_at.clone()
}

#[test]
fn dma_alignment_ablation_unaligned_delays_small_frames() {
    // The paper's §IV-B2 claim: without packet alignment, short frames sit
    // in the DMA buffer until the flush timeout; with alignment they are
    // delivered on the next interrupt.
    let aligned = run_dma(DmaParams::aligned());
    let unaligned = run_dma(DmaParams::unaligned());
    assert_eq!(aligned.len(), 4);
    assert_eq!(unaligned.len(), 4);
    for (a, u) in aligned.iter().zip(&unaligned) {
        let delta = u.saturating_since(*a);
        assert!(
            delta >= SimDuration::from_millis(40),
            "unaligned delivery should pay ~the flush timeout, got {delta}"
        );
    }
}

#[test]
fn synchronized_senders_collide() {
    // Two nodes whose backoffs can tie on a third's channel: over many
    // synchronized send rounds, at least one collision must emerge.
    struct Spammer;
    impl NodeBehavior for Spammer {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            for _ in 0..30 {
                ctx.broadcast(ChannelId(0), Bytes::from_static(&[1; 100]), 100);
            }
        }
        fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
        fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
    }
    let topo = Topology::single_hop(3);
    let behaviors = vec![Spammer, Spammer, Spammer];
    let cfg = SimConfig { seed: 4, ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, topo, behaviors);
    sim.run_until(SimTime::from_micros(600_000_000));
    assert!(
        sim.metrics().collisions > 0,
        "30 synchronized rounds with CW=16 should produce at least one tie"
    );
}

#[test]
fn cluster_channels_do_not_interfere() {
    // Saturating cluster 1's channel must not delay cluster 2's traffic.
    struct OneShot;
    impl NodeBehavior for OneShot {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            let ch = ctx.node_id().index() < 4;
            ctx.broadcast(
                ChannelId(if ch { 1 } else { 2 }),
                Bytes::from_static(&[9; 50]),
                50,
            );
        }
        fn on_frame(&mut self, _f: &Frame, _ctx: &mut NodeCtx) {}
        fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
    }
    let topo = Topology::clustered(2, 4);
    let behaviors = (0..8).map(|_| OneShot).collect();
    let cfg = SimConfig { seed: 5, ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, topo, behaviors);
    sim.run_until(SimTime::from_micros(30_000_000));
    // Every node heard its 3 cluster peers and nothing else.
    for (id, m) in sim.metrics().iter() {
        assert_eq!(m.frames_received, 3, "{id} heard cross-cluster traffic?");
    }
}

#[test]
fn routed_overlay_adds_latency() {
    struct Echoer {
        got_at: Option<SimTime>,
        send: bool,
        channel: ChannelId,
    }
    impl NodeBehavior for Echoer {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            ctx.join_channel(self.channel);
            if self.send {
                ctx.broadcast(self.channel, Bytes::from_static(&[3; 60]), 60);
            }
        }
        fn on_frame(&mut self, _f: &Frame, ctx: &mut NodeCtx) {
            self.got_at.get_or_insert(ctx.now());
        }
        fn on_timer(&mut self, _id: u64, _ctx: &mut NodeCtx) {}
    }
    // Direct channel 1 vs routed overlay channel 0 (clustered topology's
    // global channel carries RoutingModel::leader_overlay()).
    let run = |channel: ChannelId| {
        let topo = Topology::clustered(4, 4);
        let behaviors: Vec<Echoer> = (0..16)
            .map(|i| Echoer { got_at: None, send: i == 0, channel })
            .collect();
        let cfg = SimConfig { seed: 6, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg, topo, behaviors);
        sim.run_until(SimTime::from_micros(30_000_000));
        sim.behaviors().filter_map(|(_, b)| b.got_at).min()
    };
    let direct = run(ChannelId(1)).expect("direct delivery");
    let routed = run(ChannelId(0)).expect("routed delivery");
    assert!(
        routed > direct,
        "overlay must cost more than direct ({routed} vs {direct})"
    );
}
