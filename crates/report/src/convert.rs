//! Typed conversions between domain values and [`Json`].
//!
//! `ToJson`/`FromJson` play the role the serde traits would if the shim's
//! derives were real: every type that appears in a sweep report implements
//! them by hand, with stable field names that double as the report schema
//! (documented in the README's "Running sweeps" section). Conversions for
//! the wireless and crypto configuration types live here; the testbed types
//! (`TestbedConfig`, `RunReport`, …) implement the traits in
//! `wbft_consensus::report`.
//!
//! Conventions: durations and instants are microsecond integers with an
//! `_us` key suffix; enums are tagged objects (`{"kind": …}`) or name
//! strings; non-finite floats encode as `null` and decode as NaN.

use crate::json::{Json, JsonError};
use wbft_crypto::{CryptoSuite, EcdsaCurve, ThresholdCurve};
use wbft_wireless::{
    AdversaryConfig, CsmaParams, DmaParams, LossModel, Metrics, NodeId, NodeMetrics, RadioParams,
    SchedConfig, SchedPolicy, SimDuration, SimTime,
};

/// Encoding into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Decoding from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs a value, with a descriptive error on schema mismatch.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Looks up a required object member.
pub fn member<'a>(j: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    j.get(key).ok_or_else(|| JsonError::msg(format!("missing member \"{key}\"")))
}

/// Looks up and decodes a required object member.
pub fn field<T: FromJson>(j: &Json, key: &str) -> Result<T, JsonError> {
    T::from_json(member(j, key)?)
        .map_err(|e| JsonError::msg(format!("in member \"{key}\": {e}")))
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError::msg("expected bool"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::u64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_u64().ok_or_else(|| JsonError::msg("expected unsigned integer"))
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::u64(*self as u64)
    }
}

impl FromJson for u32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j)?.try_into().map_err(|_| JsonError::msg("u32 out of range"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::u64(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j)?.try_into().map_err(|_| JsonError::msg("usize out of range"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::f64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if j.is_null() {
            return Ok(f64::NAN); // non-finite floats encode as null
        }
        j.as_f64().ok_or_else(|| JsonError::msg("expected number or null"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str().map(str::to_string).ok_or_else(|| JsonError::msg("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()
            .ok_or_else(|| JsonError::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if j.is_null() { Ok(None) } else { T::from_json(j).map(Some) }
    }
}

/// Pairs encode as two-element arrays.
impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::arr([self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::msg("expected two-element array")),
        }
    }
}

// ---------------------------------------------------------------- wireless

impl ToJson for SimDuration {
    fn to_json(&self) -> Json {
        Json::u64(self.as_micros())
    }
}

impl FromJson for SimDuration {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SimDuration::from_micros(u64::from_json(j)?))
    }
}

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        Json::u64(self.as_micros())
    }
}

impl FromJson for SimTime {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SimTime::from_micros(u64::from_json(j)?))
    }
}

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        Json::u64(self.0 as u64)
    }
}

impl FromJson for NodeId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let raw: u64 = u64::from_json(j)?;
        Ok(NodeId(raw.try_into().map_err(|_| JsonError::msg("node id out of range"))?))
    }
}

impl ToJson for LossModel {
    fn to_json(&self) -> Json {
        match self {
            LossModel::None => Json::obj([("kind", Json::str("none"))]),
            LossModel::Uniform { p } => {
                Json::obj([("kind", Json::str("uniform")), ("p", Json::f64(*p))])
            }
            LossModel::PerReceiver { rates } => {
                Json::obj([("kind", Json::str("per_receiver")), ("rates", rates.to_json())])
            }
        }
    }
}

impl FromJson for LossModel {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match member(j, "kind")?.as_str() {
            Some("none") => Ok(LossModel::None),
            Some("uniform") => Ok(LossModel::Uniform { p: field(j, "p")? }),
            Some("per_receiver") => Ok(LossModel::PerReceiver { rates: field(j, "rates")? }),
            _ => Err(JsonError::msg("unknown loss model kind")),
        }
    }
}

impl ToJson for AdversaryConfig {
    fn to_json(&self) -> Json {
        // `bound_us` is a trailing optional member: encoded only when set,
        // so configs predating the delay bound serialize byte-identically.
        let mut members =
            vec![("jitter_us", self.jitter.to_json()), ("targeted", self.targeted.to_json())];
        if self.bound.is_some() {
            members.push(("bound_us", self.bound.to_json()));
        }
        Json::obj(members)
    }
}

impl FromJson for AdversaryConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(AdversaryConfig {
            jitter: field(j, "jitter_us")?,
            targeted: field(j, "targeted")?,
            bound: match j.get("bound_us") {
                Some(v) => Option::from_json(v)?,
                None => None,
            },
        })
    }
}

impl ToJson for SchedConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::u64(self.seed)),
            ("budget_us", self.budget.to_json()),
            ("policy", self.policy.to_json()),
        ])
    }
}

impl FromJson for SchedConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SchedConfig {
            seed: field(j, "seed")?,
            budget: field(j, "budget_us")?,
            policy: field(j, "policy")?,
        })
    }
}

impl ToJson for SchedPolicy {
    fn to_json(&self) -> Json {
        match self {
            SchedPolicy::Reorder { p } => {
                Json::obj([("kind", Json::str("reorder")), ("p", Json::f64(*p))])
            }
            SchedPolicy::Victim { victims } => {
                Json::obj([("kind", Json::str("victim")), ("victims", victims.to_json())])
            }
            SchedPolicy::CoinStarve { pass } => {
                Json::obj([("kind", Json::str("coin_starve")), ("pass", pass.to_json())])
            }
        }
    }
}

impl FromJson for SchedPolicy {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match member(j, "kind")?.as_str() {
            Some("reorder") => Ok(SchedPolicy::Reorder { p: field(j, "p")? }),
            Some("victim") => Ok(SchedPolicy::Victim { victims: field(j, "victims")? }),
            Some("coin_starve") => Ok(SchedPolicy::CoinStarve { pass: field(j, "pass")? }),
            _ => Err(JsonError::msg("unknown sched policy kind")),
        }
    }
}

impl ToJson for RadioParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bitrate_bps", Json::u64(self.bitrate_bps)),
            ("preamble_us", Json::u64(self.preamble_us)),
            ("max_frame_bytes", self.max_frame_bytes.to_json()),
        ])
    }
}

impl FromJson for RadioParams {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(RadioParams {
            bitrate_bps: field(j, "bitrate_bps")?,
            preamble_us: field(j, "preamble_us")?,
            max_frame_bytes: field(j, "max_frame_bytes")?,
        })
    }
}

impl ToJson for CsmaParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("difs_us", Json::u64(self.difs_us)),
            ("slot_us", Json::u64(self.slot_us)),
            ("cw_slots", self.cw_slots.to_json()),
        ])
    }
}

impl FromJson for CsmaParams {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CsmaParams {
            difs_us: field(j, "difs_us")?,
            slot_us: field(j, "slot_us")?,
            cw_slots: field(j, "cw_slots")?,
        })
    }
}

impl ToJson for DmaParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("half_buffer_bytes", self.half_buffer_bytes.to_json()),
            ("alignment", Json::Bool(self.alignment)),
            ("interrupt_us", Json::u64(self.interrupt_us)),
            ("flush_timeout_us", Json::u64(self.flush_timeout_us)),
        ])
    }
}

impl FromJson for DmaParams {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(DmaParams {
            half_buffer_bytes: field(j, "half_buffer_bytes")?,
            alignment: field(j, "alignment")?,
            interrupt_us: field(j, "interrupt_us")?,
            flush_timeout_us: field(j, "flush_timeout_us")?,
        })
    }
}

impl ToJson for NodeMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("channel_accesses", Json::u64(self.channel_accesses)),
            ("bytes_sent", Json::u64(self.bytes_sent)),
            ("airtime_us", self.airtime.to_json()),
            ("frames_received", Json::u64(self.frames_received)),
            ("lost_collision", Json::u64(self.lost_collision)),
            ("lost_noise", Json::u64(self.lost_noise)),
            ("lost_half_duplex", Json::u64(self.lost_half_duplex)),
            ("cpu_time_us", self.cpu_time.to_json()),
        ])
    }
}

impl FromJson for NodeMetrics {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NodeMetrics {
            channel_accesses: field(j, "channel_accesses")?,
            bytes_sent: field(j, "bytes_sent")?,
            airtime: field(j, "airtime_us")?,
            frames_received: field(j, "frames_received")?,
            lost_collision: field(j, "lost_collision")?,
            lost_noise: field(j, "lost_noise")?,
            lost_half_duplex: field(j, "lost_half_duplex")?,
            cpu_time: field(j, "cpu_time_us")?,
        })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let per_node: Vec<Json> = self.iter().map(|(_, m)| m.to_json()).collect();
        Json::obj([("collisions", Json::u64(self.collisions)), ("per_node", Json::arr(per_node))])
    }
}

impl FromJson for Metrics {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Metrics::from_parts(field(j, "per_node")?, field(j, "collisions")?))
    }
}

// ------------------------------------------------------------------ crypto

impl ToJson for EcdsaCurve {
    fn to_json(&self) -> Json {
        Json::str(self.name())
    }
}

impl FromJson for EcdsaCurve {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let name = j.as_str().ok_or_else(|| JsonError::msg("expected curve name"))?;
        EcdsaCurve::ALL
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| JsonError::msg(format!("unknown ECDSA curve \"{name}\"")))
    }
}

impl ToJson for ThresholdCurve {
    fn to_json(&self) -> Json {
        Json::str(self.name())
    }
}

impl FromJson for ThresholdCurve {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let name = j.as_str().ok_or_else(|| JsonError::msg("expected curve name"))?;
        ThresholdCurve::ALL
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| JsonError::msg(format!("unknown threshold curve \"{name}\"")))
    }
}

impl ToJson for CryptoSuite {
    fn to_json(&self) -> Json {
        Json::obj([("ecdsa", self.ecdsa.to_json()), ("threshold", self.threshold.to_json())])
    }
}

impl FromJson for CryptoSuite {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CryptoSuite { ecdsa: field(j, "ecdsa")?, threshold: field(j, "threshold")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn round_trip<T: ToJson + FromJson>(v: &T) -> T {
        let text = v.to_json().pretty();
        T::from_json(&parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn loss_models_round_trip() {
        for m in [
            LossModel::None,
            LossModel::Uniform { p: 0.125 },
            LossModel::PerReceiver { rates: vec![(NodeId(2), 0.5), (NodeId(0), 0.25)] },
        ] {
            let back = round_trip(&m);
            assert_eq!(back.to_json(), m.to_json());
        }
    }

    #[test]
    fn adversary_and_params_round_trip() {
        let a = AdversaryConfig {
            jitter: Some(SimDuration::from_millis(10)),
            targeted: vec![(NodeId(3), SimDuration::from_secs(1))],
            bound: None,
        };
        assert_eq!(round_trip(&a).to_json(), a.to_json());
        assert!(
            a.to_json().get("bound_us").is_none(),
            "unset bound must stay absent for fixture byte-identity"
        );
        let bounded = AdversaryConfig { bound: Some(SimDuration::from_secs(4)), ..a.clone() };
        assert_eq!(round_trip(&bounded).to_json(), bounded.to_json());
        assert_eq!(round_trip(&bounded).bound, Some(SimDuration::from_secs(4)));
        let r = RadioParams::lora_sf7();
        assert_eq!(round_trip(&r), r);
        let c = CsmaParams::lora_class();
        assert_eq!(round_trip(&c), c);
        let d = DmaParams::unaligned();
        assert_eq!(round_trip(&d), d);
        let s = CryptoSuite::medium();
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn sched_configs_round_trip() {
        for policy in [
            SchedPolicy::Reorder { p: 0.25 },
            SchedPolicy::Victim { victims: vec![NodeId(1), NodeId(3)] },
            SchedPolicy::CoinStarve { pass: 2 },
        ] {
            let cfg =
                SchedConfig { seed: 42, budget: SimDuration::from_secs(5), policy };
            let back = round_trip(&cfg);
            assert_eq!(back, cfg);
        }
        assert!(SchedPolicy::from_json(&parse(r#"{"kind":"drop_all"}"#).unwrap()).is_err());
    }

    #[test]
    fn metrics_round_trip() {
        let mut m = Metrics::new(2);
        m.collisions = 3;
        m.node_mut(NodeId(0)).channel_accesses = 7;
        m.node_mut(NodeId(1)).airtime = SimDuration::from_millis(42);
        let back = round_trip(&m);
        assert_eq!(back.collisions, 3);
        assert_eq!(back.node(NodeId(0)).channel_accesses, 7);
        assert_eq!(back.node(NodeId(1)).airtime, SimDuration::from_millis(42));
    }

    #[test]
    fn nan_round_trips_through_null() {
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
    }

    #[test]
    fn schema_mismatches_are_errors() {
        assert!(LossModel::from_json(&parse(r#"{"kind":"gaussian"}"#).unwrap()).is_err());
        assert!(EcdsaCurve::from_json(&Json::str("secp999r9")).is_err());
        assert!(u64::from_json(&Json::str("7")).is_err());
        assert!(NodeId::from_json(&Json::u64(1 << 40)).is_err());
    }
}
