//! A minimal, dependency-free JSON value model with a parser and two
//! writers (compact and pretty).
//!
//! The serde shim's derives expand to nothing (the build environment has no
//! registry access), so machine-readable reports need a real encoder. The
//! subset implemented here is exactly what the sweep harness requires:
//!
//! * object member order is preserved, making encoding deterministic —
//!   byte-identical reports are how the determinism tests compare runs;
//! * numbers keep their literal text, so `encode(decode(s)) == s` for any
//!   number this writer produced, and `u64` values (seeds, microsecond
//!   timestamps) round-trip exactly rather than through an `f64`;
//! * the parser returns errors, never panics, on malformed input, and is
//!   depth-limited so adversarial nesting cannot overflow the stack.

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token (see [`Number`]).
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (and significant for the
    /// byte-identity guarantees the sweep harness provides).
    Obj(Vec<(String, Json)>),
}

/// A JSON number, stored as its literal token text.
///
/// Keeping the token (rather than an `f64`) means integers up to `u64::MAX`
/// survive a round-trip exactly, and re-encoding a parsed document
/// reproduces it byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub struct Number(String);

impl Number {
    /// An exact unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(v.to_string())
    }

    /// An exact signed integer.
    pub fn from_i64(v: i64) -> Self {
        Number(v.to_string())
    }

    /// A finite float, formatted with Rust's shortest round-trip `Display`.
    ///
    /// # Panics
    ///
    /// Panics on NaN/infinity — JSON has no token for them; encode such
    /// values as `null` instead (the [`crate::ToJson`] impl for `f64` does).
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "non-finite f64 has no JSON number token");
        Number(format!("{v}"))
    }

    /// The literal token text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The value as a `u64`, if it is one exactly (integer token in range,
    /// or a float token with zero fraction).
    pub fn as_u64(&self) -> Option<u64> {
        if let Ok(v) = self.0.parse::<u64>() {
            return Some(v);
        }
        let f = self.0.parse::<f64>().ok()?;
        // Exclusive upper bound: `u64::MAX as f64` rounds up to 2^64, which
        // `as u64` would saturate rather than represent.
        (f.fract() == 0.0 && f >= 0.0 && f < u64::MAX as f64).then_some(f as u64)
    }

    /// The value as an `f64` (lossy for huge integers, like any JSON reader).
    pub fn as_f64(&self) -> Option<f64> {
        self.0.parse::<f64>().ok()
    }
}

/// Error from parsing or from typed decoding ([`crate::FromJson`]).
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    pub(crate) fn msg(m: impl Into<String>) -> Self {
        JsonError(m.into())
    }
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An exact unsigned integer value.
    pub fn u64(v: u64) -> Json {
        Json::Num(Number::from_u64(v))
    }

    /// A float value; NaN and infinities become `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() { Json::Num(Number::from_f64(v)) } else { Json::Null }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact `u64` value, if this is a number holding one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The `f64` value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty encoding: two-space indent, one member per line, `\n` line
    /// endings, no trailing newline. Deterministic given member order.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(0), &mut out);
        out
    }
}

/// Compact single-line encoding.
impl core::fmt::Display for Json {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        write_value(self, None, &mut out);
        f.write_str(&out)
    }
}

/// `indent`: `None` = compact, `Some(level)` = pretty at that depth.
fn write_value(v: &Json, indent: Option<usize>, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => out.push_str(n.as_str()),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(items.iter().map(Item::Plain), '[', ']', indent, out),
        Json::Obj(members) => {
            write_seq(members.iter().map(|(k, v)| Item::Keyed(k, v)), '{', '}', indent, out)
        }
    }
}

enum Item<'a> {
    Plain(&'a Json),
    Keyed(&'a str, &'a Json),
}

fn write_seq<'a>(
    items: impl ExactSizeIterator<Item = Item<'a>>,
    open: char,
    close: char,
    indent: Option<usize>,
    out: &mut String,
) {
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|l| l + 1);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        match item {
            Item::Plain(v) => write_value(v, inner, out),
            Item::Keyed(k, v) => {
                write_string(k, out);
                out.push(':');
                if inner.is_some() {
                    out.push(' ');
                }
                write_value(v, inner, out);
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The canonical on-disk encoding of a JSON document: pretty-printed plus
/// a trailing newline. All report files in the workspace use this one
/// definition — byte-identity checks between runs are defined on it.
pub fn to_file_string(j: &Json) -> String {
    let mut text = j.pretty();
    text.push('\n');
    text
}

/// Writes a document in the canonical encoding, creating parent directories.
pub fn write_file(path: &std::path::Path, j: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_file_string(j))
}

/// Reads and parses a document, prefixing errors with the path.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Json> {
    let text = std::fs::read_to_string(path)?;
    parse(&text).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
    })
}

/// Maximum nesting depth the parser accepts; adversarially deep documents
/// fail with an error instead of overflowing the stack.
const MAX_DEPTH: usize = 96;

/// Parses one JSON document (a single value plus optional whitespace).
///
/// Never panics: malformed input, trailing garbage, invalid escapes, and
/// over-deep nesting all return [`JsonError`] with a byte offset.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; input is &str so boundaries
                    // are valid, we just need to find the char length.
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(
                        core::str::from_utf8(&rest[..len.min(rest.len())])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` is already consumed),
    /// plus a low-surrogate pair if needed. Leaves `pos` after the digits.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            self.digits();
        }
        let token = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(Json::Num(Number(token.to_string())))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "1e3", "1.5e-7", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text, "compact encoding must reproduce {text}");
        }
    }

    #[test]
    fn u64_extremes_survive_exactly() {
        let v = Json::u64(u64::MAX);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
        // Above-range and negative values refuse rather than saturate —
        // including 2^64 exactly, which `u64::MAX as f64` rounds up to.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(parse("1.8446744073709552e19").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        // Integral float tokens in range still convert.
        assert_eq!(parse("12.0").unwrap().as_u64(), Some(12));
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 123456.789, -0.0, 1e300] {
            let back = parse(&Json::f64(x).to_string()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert!(Json::f64(f64::NAN).is_null());
        assert!(Json::f64(f64::INFINITY).is_null());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn pretty_is_parseable_and_fixpoint() {
        let v = Json::obj([
            ("name", Json::str("sweep")),
            ("seeds", Json::arr([Json::u64(1), Json::u64(2)])),
            ("empty", Json::obj::<String>([])),
            ("note", Json::str("line\nbreak \"quoted\"")),
        ]);
        let text = v.pretty();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.pretty(), text);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\u0041\n\t\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\té😀"));
        // Re-encode and re-parse: semantic identity.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for text in [
            "", "{", "[", "\"", "{\"a\"}", "[1,]", "{\"a\":1,}", "01", "1.", "1e", "nul",
            "truex", "[1 2]", "\"\\q\"", "\"\\ud800\"", "+1", "--1", "{1:2}", "[1]x",
            "\u{7}",
        ] {
            assert!(parse(text).is_err(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
