#![forbid(unsafe_code)]
//! # wbft-report — machine-readable reports for the sweep harness
//!
//! The workspace's serde is an offline no-op shim, so this crate supplies
//! the real serialization path the testbed needs: a minimal JSON value
//! model with a non-panicking parser and deterministic writers ([`json`]),
//! and hand-written [`ToJson`]/[`FromJson`] conversions for the wireless
//! and crypto configuration types ([`convert`]). The consensus crate builds
//! on these to serialize `TestbedConfig`/`RunReport` into
//! `target/reports/*.json`, which is what makes figure regeneration
//! scriptable and lets the determinism tests compare runs byte-for-byte.
//!
//! When registry access exists, swapping the serde shim for real serde can
//! retire the hand-written impls; the JSON schema documented in the README
//! is the stable interface.

pub mod convert;
pub mod json;

pub use convert::{field, member, FromJson, ToJson};
pub use json::{parse, read_file, to_file_string, write_file, Json, JsonError, Number};
