//! Property-based tests for the wire layer: arbitrary packets roundtrip,
//! nominal sizes are consistent, bitmaps behave like sets of bits.

use bytes::Bytes;
use proptest::prelude::*;
use wbft_crypto::hash::Digest32;
use wbft_net::packets::{AbaLcInst, AbaScInst};
use wbft_net::wire::{ByteSink, CountSink, Sizing, WireReader};
use wbft_net::{BinValues, Bitmap, Body, CoinFlavor, Vote};

fn arb_vote() -> impl Strategy<Value = Vote> {
    (0u8..4).prop_map(Vote::from_code)
}

fn arb_bitmap(len: usize) -> impl Strategy<Value = Bitmap> {
    any::<u64>().prop_map(move |raw| Bitmap::from_raw(raw, len))
}

fn arb_digest() -> impl Strategy<Value = Digest32> {
    any::<[u8; 32]>().prop_map(Digest32)
}

fn arb_body() -> impl Strategy<Value = Body> {
    let n = 4usize;
    prop_oneof![
        // RBC INIT with arbitrary fragment payloads.
        (any::<u8>(), 0u8..4, 1u8..5, arb_digest(), any::<Vec<u8>>(), arb_bitmap(n)).prop_map(
            |(instance, frag, frag_total, root, data, init_nack)| Body::RbcInit {
                instance,
                frag: frag % frag_total,
                frag_total,
                root,
                data: Bytes::from(data),
                init_nack,
            }
        ),
        // Batched ER packets.
        (
            proptest::collection::vec(arb_digest(), n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n)
        )
            .prop_map(|(roots, echo, ready, echo_nack, ready_nack, init_nack)| {
                Body::RbcEchoReady { roots, echo, ready, echo_nack, ready_nack, init_nack }
            }),
        // RBC-small vote packets.
        (
            proptest::collection::vec(arb_vote(), n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n),
            arb_bitmap(n)
        )
            .prop_map(|(values, echo, ready, init_nack, echo_nack, ready_nack)| {
                Body::RbcSmall { values, echo, ready, init_nack, echo_nack, ready_nack }
            }),
        // Bracha-ABA report lattices.
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(arb_vote(), n),
            proptest::collection::vec(arb_vote(), n),
            proptest::collection::vec(arb_vote(), n),
            arb_vote()
        )
            .prop_map(|(instance, round, p1, p2, p3, decided)| Body::AbaLc {
                insts: vec![AbaLcInst { instance, round, reports: [p1, p2, p3], decided }],
            }),
        // Shared-coin ABA vote packets (no coin shares — covered by unit
        // tests with real group elements).
        (any::<u8>(), any::<u16>(), 0u8..4, arb_vote(), arb_vote(), arb_bitmap(n)).prop_map(
            |(instance, round, bval, aux, decided, share_nack)| Body::AbaSc {
                flavor: CoinFlavor::ThreshSig,
                insts: vec![AbaScInst {
                    instance,
                    round,
                    bval: BinValues::from_code(bval),
                    aux,
                    decided,
                }],
                coin_shares: vec![],
                share_nack,
            }
        ),
        // Baseline votes.
        (any::<u8>(), any::<u16>(), any::<bool>()).prop_map(|(i, r, v)| Body::BaseAbaBval {
            instance: i,
            round: r,
            value: v
        }),
        (any::<u8>(), any::<u16>(), 0u8..3, any::<u8>(), arb_vote()).prop_map(
            |(instance, round, phase, voter, value)| Body::BaseAbaLcReport {
                instance,
                round,
                phase,
                voter,
                value
            }
        ),
        (any::<u64>(), any::<u16>(), arb_digest()).prop_map(|(epoch, accused, digest)| {
            Body::Complaint { epoch, accused, digest }
        }),
        (any::<u64>(), arb_digest(), any::<u32>()).prop_map(|(epoch, digest, tx_count)| {
            Body::GlobalDecision { epoch, digest, tx_count }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bodies_roundtrip(body in arb_body()) {
        let mut sink = ByteSink::new();
        body.encode_into(&mut sink).expect("encode");
        let bytes = sink.into_bytes();
        let mut reader = WireReader::new(&bytes);
        let decoded = Body::decode(&mut reader).expect("decode");
        prop_assert_eq!(decoded, body);
        prop_assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn nominal_length_is_positive_and_stable(body in arb_body()) {
        let sizing = Sizing::light(4);
        let mut a = CountSink::new(sizing);
        body.encode_into(&mut a).expect("count encode");
        let mut b = CountSink::new(sizing);
        body.encode_into(&mut b).expect("count encode");
        prop_assert_eq!(a.total(), b.total());
        prop_assert!(a.total() > 0);
    }

    #[test]
    fn slot_keys_are_stable_and_kind_distinct(body in arb_body()) {
        prop_assert_eq!(body.slot_key(), body.slot_key());
        // Slot keys embed the packet kind in the high bits, so two bodies of
        // different variants never collide.
        let other = Body::Complaint {
            epoch: 0,
            accused: 0,
            digest: Digest32::zero(),
        };
        if std::mem::discriminant(&body) != std::mem::discriminant(&other) {
            prop_assert_ne!(body.slot_key() >> 48, other.slot_key() >> 48);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut reader = WireReader::new(&bytes);
        let _ = Body::decode(&mut reader); // must return Err, not panic
    }

    #[test]
    fn bitmap_set_get_consistency(raw in any::<u64>(), len in 1usize..=64) {
        let b = Bitmap::from_raw(raw, len);
        let count = (0..len).filter(|&i| b.get(i)).count();
        prop_assert_eq!(count, b.count());
        let mut rebuilt = Bitmap::new(len);
        for i in b.iter_set() {
            rebuilt.set(i, true);
        }
        prop_assert_eq!(rebuilt, b);
    }

    #[test]
    fn bitmap_union_is_commutative(a in any::<u64>(), b in any::<u64>(), len in 1usize..=64) {
        let x = Bitmap::from_raw(a, len);
        let y = Bitmap::from_raw(b, len);
        prop_assert_eq!(x.union(&y), y.union(&x));
        prop_assert!(x.union(&y).count() >= x.count().max(y.count()));
    }
}
