//! Two-bit votes and binary-value sets — the "small proposals" of RBC-small
//! and the ABA vote alphabet (paper §IV-C1: "the proposal broadcast by RBC
//! has only three possible values: 1, 0, and ⊥. Thus, only two bits are
//! needed").

/// A two-bit vote value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum Vote {
    /// No vote observed yet.
    #[default]
    Unknown,
    /// Binary 0.
    Zero,
    /// Binary 1.
    One,
    /// The distinguished "no value" ⊥ of Bracha's ABA phase 2/3.
    Bot,
}

impl Vote {
    /// Two-bit wire code.
    pub fn code(&self) -> u8 {
        match self {
            Vote::Unknown => 0,
            Vote::Zero => 1,
            Vote::One => 2,
            Vote::Bot => 3,
        }
    }

    /// Decodes a two-bit code (total: all four codes are meaningful).
    pub fn from_code(code: u8) -> Vote {
        match code & 0b11 {
            1 => Vote::Zero,
            2 => Vote::One,
            3 => Vote::Bot,
            _ => Vote::Unknown,
        }
    }

    /// Builds a binary vote.
    pub fn from_bool(b: bool) -> Vote {
        if b {
            Vote::One
        } else {
            Vote::Zero
        }
    }

    /// The boolean value, if binary.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Vote::Zero => Some(false),
            Vote::One => Some(true),
            _ => None,
        }
    }

    /// `true` for `Zero`/`One`/`Bot` — an actual vote, not absence.
    pub fn is_cast(&self) -> bool {
        !matches!(self, Vote::Unknown)
    }
}

/// The `bin_values` set of shared-coin ABA: which of {0, 1} have passed the
/// 2f+1 BVAL threshold.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct BinValues {
    /// 0 is in the set.
    pub zero: bool,
    /// 1 is in the set.
    pub one: bool,
}

impl BinValues {
    /// The empty set.
    pub fn empty() -> Self {
        BinValues::default()
    }

    /// Inserts a value.
    pub fn insert(&mut self, v: bool) {
        if v {
            self.one = true;
        } else {
            self.zero = true;
        }
    }

    /// Membership test.
    pub fn contains(&self, v: bool) -> bool {
        if v {
            self.one
        } else {
            self.zero
        }
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.zero && !self.one
    }

    /// If exactly one value is present, returns it.
    pub fn single(&self) -> Option<bool> {
        match (self.zero, self.one) {
            (true, false) => Some(false),
            (false, true) => Some(true),
            _ => None,
        }
    }

    /// Two-bit wire code.
    pub fn code(&self) -> u8 {
        u8::from(self.zero) | (u8::from(self.one) << 1)
    }

    /// Decodes a two-bit code.
    pub fn from_code(code: u8) -> Self {
        BinValues { zero: code & 1 == 1, one: code & 2 == 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_codes_roundtrip() {
        for v in [Vote::Unknown, Vote::Zero, Vote::One, Vote::Bot] {
            assert_eq!(Vote::from_code(v.code()), v);
        }
    }

    #[test]
    fn vote_bool_conversions() {
        assert_eq!(Vote::from_bool(true), Vote::One);
        assert_eq!(Vote::from_bool(false), Vote::Zero);
        assert_eq!(Vote::One.as_bool(), Some(true));
        assert_eq!(Vote::Bot.as_bool(), None);
        assert!(Vote::Bot.is_cast());
        assert!(!Vote::Unknown.is_cast());
    }

    #[test]
    fn bin_values_lattice() {
        let mut bv = BinValues::empty();
        assert!(bv.is_empty());
        assert_eq!(bv.single(), None);
        bv.insert(true);
        assert_eq!(bv.single(), Some(true));
        assert!(bv.contains(true) && !bv.contains(false));
        bv.insert(false);
        assert_eq!(bv.single(), None);
        assert!(bv.contains(false));
    }

    #[test]
    fn bin_values_codes_roundtrip() {
        for code in 0..4u8 {
            assert_eq!(BinValues::from_code(code).code(), code);
        }
    }
}
