//! The dual-mode wire codec.
//!
//! Every packet encodes through a [`Sink`] with two implementations:
//!
//! * [`ByteSink`] writes the actual bytes exchanged in the simulation
//!   (group elements are 32 bytes — the size of *this crate's* crypto);
//! * [`CountSink`] computes the **nominal wire length**: the bytes the same
//!   packet would occupy with the paper's curve deployments (a BN158
//!   threshold signature is 21 bytes, a secp160r1 packet signature 40
//!   bytes, …). The simulator's airtime and byte counters use the nominal
//!   length, so packet-size effects match the paper's testbed, not our
//!   substitute crypto.
//!
//! Decoding reads the actual bytes back with [`WireReader`].

use crate::bitmap::Bitmap;
use bytes::{BufMut, Bytes, BytesMut};
use wbft_crypto::hash::Digest32;
use wbft_crypto::profile::CryptoSuite;
use wbft_crypto::shamir::ShareIndex;
use wbft_crypto::thresh_coin::CoinShare;
use wbft_crypto::thresh_enc::{DecShare, DleqProof};
use wbft_crypto::thresh_sig::{SigShare, ThresholdSignature};
use wbft_crypto::{GroupElem, Scalar};

/// Which coin deployment a coin share belongs to — threshold signatures
/// (ABA-SC) or threshold coin flipping (ABA-CP / BEAT). Decides the nominal
/// share size.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum CoinFlavor {
    /// Coin from threshold signatures (Cachin's ABA).
    ThreshSig,
    /// Coin from threshold coin flipping (BEAT).
    CoinFlip,
}

/// Sizing context for nominal lengths.
#[derive(Clone, Copy, Debug)]
pub struct Sizing {
    /// Number of nodes / parallel instances.
    pub n: usize,
    /// Curve deployments in effect.
    pub suite: CryptoSuite,
}

impl Sizing {
    /// Sizing for `n` nodes under the paper's light suite.
    pub fn light(n: usize) -> Self {
        Sizing { n, suite: CryptoSuite::light() }
    }
}

/// Checks a length-prefixed byte string's length against its u16 prefix.
///
/// # Errors
///
/// [`WireError::Oversize`] for inputs longer than 65535 bytes.
pub fn checked_bytes_len(len: usize) -> Result<u16, WireError> {
    u16::try_from(len).map_err(|_| WireError::Oversize("byte string"))
}

/// Checks a bitmap's logical length against its u8 wire prefix.
///
/// (Today's [`Bitmap`] caps at 64 bits, but the wire prefix is what bounds
/// the format — a wider future bitmap must still fit the u8.)
///
/// # Errors
///
/// [`WireError::Oversize`] for lengths above 255.
pub fn checked_bitmap_len(len: usize) -> Result<u8, WireError> {
    u8::try_from(len).map_err(|_| WireError::Oversize("bitmap"))
}

/// Encoding destination; see module docs.
///
/// Variable-length fields (`bytes`, `bitmap`, `count8`) are fallible: a
/// value that does not fit its wire-format length prefix yields
/// [`WireError::Oversize`] instead of panicking or silently truncating, so
/// an oversized message can never abort a node mid-encode.
pub trait Sink {
    /// Raw byte.
    fn u8(&mut self, v: u8);
    /// Little-endian u16.
    fn u16(&mut self, v: u16);
    /// Little-endian u32.
    fn u32(&mut self, v: u32);
    /// Little-endian u64.
    fn u64(&mut self, v: u64);
    /// Length-prefixed byte string (u16 prefix).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] for inputs longer than 65535 bytes.
    fn bytes(&mut self, v: &[u8]) -> Result<(), WireError>;
    /// A 32-byte digest.
    fn digest(&mut self, v: &Digest32);
    /// A bitmap (length known from context).
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] if the logical length exceeds the u8 prefix.
    fn bitmap(&mut self, v: &Bitmap) -> Result<(), WireError>;
    /// A u8 element-count prefix for a variable-length list.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] for counts above 255.
    fn count8(&mut self, n: usize) -> Result<(), WireError> {
        let b = u8::try_from(n).map_err(|_| WireError::Oversize("list count"))?;
        self.u8(b);
        Ok(())
    }
    /// A threshold signature share.
    fn sig_share(&mut self, v: &SigShare);
    /// A combined threshold signature.
    fn thresh_sig(&mut self, v: &ThresholdSignature);
    /// A coin share of the given flavor.
    fn coin_share(&mut self, v: &CoinShare, flavor: CoinFlavor);
    /// A threshold-decryption share.
    fn dec_share(&mut self, v: &DecShare);
}

/// Writes real bytes.
#[derive(Default)]
pub struct ByteSink {
    buf: BytesMut,
}

impl ByteSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far (for signing).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes without a length prefix (signatures).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }
}

impl Sink for ByteSink {
    fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }
    fn bytes(&mut self, v: &[u8]) -> Result<(), WireError> {
        self.buf.put_u16_le(checked_bytes_len(v.len())?);
        self.buf.put_slice(v);
        Ok(())
    }
    fn digest(&mut self, v: &Digest32) {
        self.buf.put_slice(v.as_bytes());
    }
    fn bitmap(&mut self, v: &Bitmap) -> Result<(), WireError> {
        self.buf.put_u8(checked_bitmap_len(v.len())?);
        let raw = v.to_raw().to_le_bytes();
        let prefix = raw.get(..v.wire_len()).ok_or(WireError::Oversize("bitmap"))?;
        self.buf.put_slice(prefix);
        Ok(())
    }
    fn sig_share(&mut self, v: &SigShare) {
        self.buf.put_u16_le(v.index.value());
        self.buf.put_slice(&v.value.to_bytes());
    }
    fn thresh_sig(&mut self, v: &ThresholdSignature) {
        self.buf.put_slice(&v.to_bytes());
    }
    fn coin_share(&mut self, v: &CoinShare, _flavor: CoinFlavor) {
        self.buf.put_u16_le(v.index.value());
        self.buf.put_slice(&v.value.to_bytes());
    }
    fn dec_share(&mut self, v: &DecShare) {
        self.buf.put_u16_le(v.index.value());
        self.buf.put_slice(&v.value.to_bytes());
        self.buf.put_slice(&v.proof.c.to_bytes());
        self.buf.put_slice(&v.proof.z.to_bytes());
    }
}

/// Counts nominal bytes under a [`Sizing`].
pub struct CountSink {
    sizing: Sizing,
    total: usize,
}

impl CountSink {
    /// Fresh counter.
    pub fn new(sizing: Sizing) -> Self {
        CountSink { sizing, total: 0 }
    }

    /// The nominal byte count.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl Sink for CountSink {
    fn u8(&mut self, _v: u8) {
        self.total += 1;
    }
    fn u16(&mut self, _v: u16) {
        self.total += 2;
    }
    fn u32(&mut self, _v: u32) {
        self.total += 4;
    }
    fn u64(&mut self, _v: u64) {
        self.total += 8;
    }
    fn bytes(&mut self, v: &[u8]) -> Result<(), WireError> {
        // Same bound as ByteSink, so the nominal and real paths agree on
        // which messages are encodable.
        checked_bytes_len(v.len())?;
        self.total += 2 + v.len();
        Ok(())
    }
    fn digest(&mut self, _v: &Digest32) {
        self.total += 32;
    }
    fn bitmap(&mut self, v: &Bitmap) -> Result<(), WireError> {
        checked_bitmap_len(v.len())?;
        self.total += 1 + v.wire_len();
        Ok(())
    }
    fn sig_share(&mut self, _v: &SigShare) {
        self.total += 2 + self.sizing.suite.threshold.signature_profile().share_bytes;
    }
    fn thresh_sig(&mut self, _v: &ThresholdSignature) {
        self.total += self.sizing.suite.threshold.signature_profile().signature_bytes;
    }
    fn coin_share(&mut self, _v: &CoinShare, flavor: CoinFlavor) {
        self.total += 2
            + match flavor {
                CoinFlavor::ThreshSig => {
                    self.sizing.suite.threshold.signature_profile().share_bytes
                }
                CoinFlavor::CoinFlip => self.sizing.suite.threshold.coin_profile().share_bytes,
            };
    }
    fn dec_share(&mut self, _v: &DecShare) {
        // Nominal size stays the pairing-deployment share size: the paper's
        // MIRACL curves verify decryption shares with a pairing and carry no
        // DLEQ bytes — the proof is a substitute-crypto artifact, so
        // charging it would distort the airtime model.
        self.total += 2 + self.sizing.suite.threshold.signature_profile().share_bytes;
    }
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A group element failed subgroup validation.
    BadGroupElement,
    /// Unknown packet discriminant.
    UnknownKind(u8),
    /// A structurally invalid field (bad bitmap length, vote code, …).
    Malformed(&'static str),
    /// A value too large for its wire-format length prefix (encode side).
    Oversize(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadGroupElement => write!(f, "invalid group element"),
            WireError::UnknownKind(k) => write!(f, "unknown packet kind {k}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Oversize(what) => {
                write!(f, "{what} too large for its wire length prefix")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Reads real bytes back.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader over a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads exactly `N` bytes into an array.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_arr()?;
        Ok(b)
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_arr()?))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.u16()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads a digest.
    pub fn digest(&mut self) -> Result<Digest32, WireError> {
        Ok(Digest32(self.take_arr()?))
    }

    /// Reads a bitmap.
    pub fn bitmap(&mut self) -> Result<Bitmap, WireError> {
        let len = self.u8()? as usize;
        if len > 64 {
            return Err(WireError::Malformed("bitmap length"));
        }
        let nbytes = len.div_ceil(8);
        let b = self.take(nbytes)?;
        let mut raw = [0u8; 8];
        let Some(dst) = raw.get_mut(..nbytes) else {
            return Err(WireError::Malformed("bitmap length"));
        };
        dst.copy_from_slice(b);
        Ok(Bitmap::from_raw(u64::from_le_bytes(raw), len))
    }

    fn group_elem(&mut self) -> Result<GroupElem, WireError> {
        let a = self.take_arr()?;
        GroupElem::from_bytes(&a).map_err(|_| WireError::BadGroupElement)
    }

    fn share_index(&mut self) -> Result<ShareIndex, WireError> {
        ShareIndex::new(self.u16()?).map_err(|_| WireError::Malformed("zero share index"))
    }

    /// Reads a threshold signature share.
    pub fn sig_share(&mut self) -> Result<SigShare, WireError> {
        let index = self.share_index()?;
        let value = self.group_elem()?;
        Ok(SigShare { index, value })
    }

    /// Reads a combined threshold signature.
    pub fn thresh_sig(&mut self) -> Result<ThresholdSignature, WireError> {
        let value = self.group_elem()?;
        Ok(ThresholdSignature { value })
    }

    /// Reads a coin share.
    pub fn coin_share(&mut self) -> Result<CoinShare, WireError> {
        let index = self.share_index()?;
        let value = self.group_elem()?;
        Ok(CoinShare { index, value })
    }

    fn scalar(&mut self) -> Result<Scalar, WireError> {
        let b = self.take(32)?;
        let mut a = [0u8; 32];
        a.copy_from_slice(b);
        Ok(Scalar::from_bytes_reduced(&a))
    }

    /// Reads a decryption share (value plus its DLEQ proof scalars).
    pub fn dec_share(&mut self) -> Result<DecShare, WireError> {
        let index = self.share_index()?;
        let value = self.group_elem()?;
        let c = self.scalar()?;
        let z = self.scalar()?;
        Ok(DecShare { index, value, proof: DleqProof { c, z } })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wbft_crypto::{thresh_sig, ThresholdCurve};

    #[test]
    fn primitive_roundtrip() {
        let mut w = ByteSink::new();
        w.u8(7);
        w.u16(300);
        w.u32(1 << 20);
        w.u64(1 << 40);
        w.bytes(b"hello").unwrap();
        let mut bm = Bitmap::new(10);
        bm.set(9, true);
        w.bitmap(&bm).unwrap();
        w.digest(&Digest32::of(b"d"));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 1 << 20);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(r.bitmap().unwrap(), bm);
        assert_eq!(r.digest().unwrap(), Digest32::of(b"d"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn crypto_objects_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (pks, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let share = sks[0].sign_share(b"m");
        let sig = pks.combine(&[share, sks[1].sign_share(b"m")]).unwrap();
        let mut w = ByteSink::new();
        w.sig_share(&share);
        w.thresh_sig(&sig);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.sig_share().unwrap(), share);
        assert_eq!(r.thresh_sig().unwrap(), sig);
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
    }

    #[test]
    fn nominal_sizes_use_profiles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (_, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let share = sks[0].sign_share(b"m");
        // Real bytes: 2 + 32. Nominal: 2 + 21 (BN158 share).
        let mut count = CountSink::new(Sizing::light(4));
        count.sig_share(&share);
        assert_eq!(count.total(), 2 + 21);
        let mut bytes = ByteSink::new();
        bytes.sig_share(&share);
        assert_eq!(bytes.as_slice().len(), 2 + 32);
    }

    #[test]
    fn coin_flavors_size_differently() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (_, secrets) =
            wbft_crypto::thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let share = secrets[0]
            .coin_share(wbft_crypto::thresh_coin::CoinName { session: 0, round: 0, domain: 0 });
        let mut a = CountSink::new(Sizing::light(4));
        a.coin_share(&share, CoinFlavor::ThreshSig);
        let mut b = CountSink::new(Sizing::light(4));
        b.coin_share(&share, CoinFlavor::CoinFlip);
        // Coin-flipping shares carry extra verification data (paper §V-A).
        assert!(b.total() > a.total());
    }

    #[test]
    fn byte_string_boundary_65535_ok_65536_errors() {
        // Exactly the u16 prefix: the maximum encodes on both sinks …
        let max = vec![0u8; u16::MAX as usize];
        let mut w = ByteSink::new();
        assert_eq!(w.bytes(&max), Ok(()));
        assert_eq!(w.as_slice().len(), 2 + 65_535);
        let mut c = CountSink::new(Sizing::light(4));
        assert_eq!(c.bytes(&max), Ok(()));
        assert_eq!(c.total(), 2 + 65_535);
        // … and one byte more is an error, not a panic, on both.
        let over = vec![0u8; u16::MAX as usize + 1];
        let mut w = ByteSink::new();
        assert_eq!(w.bytes(&over), Err(WireError::Oversize("byte string")));
        let mut c = CountSink::new(Sizing::light(4));
        assert_eq!(c.bytes(&over), Err(WireError::Oversize("byte string")));
        // A failed write leaves nothing behind the caller must undo.
        let r = WireReader::new(w.as_slice());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn length_prefix_checks_at_exact_boundaries() {
        assert_eq!(checked_bytes_len(u16::MAX as usize), Ok(u16::MAX));
        assert_eq!(
            checked_bytes_len(u16::MAX as usize + 1),
            Err(WireError::Oversize("byte string"))
        );
        assert_eq!(checked_bitmap_len(255), Ok(255));
        assert_eq!(checked_bitmap_len(256), Err(WireError::Oversize("bitmap")));
    }

    #[test]
    fn count8_boundary_255_ok_256_errors() {
        let mut w = ByteSink::new();
        assert_eq!(w.count8(255), Ok(()));
        assert_eq!(w.as_slice(), &[255]);
        assert_eq!(w.count8(256), Err(WireError::Oversize("list count")));
        let mut c = CountSink::new(Sizing::light(4));
        assert_eq!(c.count8(255), Ok(()));
        assert_eq!(c.count8(256), Err(WireError::Oversize("list count")));
    }

    #[test]
    fn max_constructible_bitmap_still_encodes() {
        // Bitmap caps at 64 bits today; the sink bound (255) is the wire
        // format's, so the largest constructible bitmap must round-trip.
        let bm = Bitmap::full(64);
        let mut w = ByteSink::new();
        w.bitmap(&bm).unwrap();
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.bitmap().unwrap(), bm);
    }

    #[test]
    fn invalid_group_element_rejected() {
        let mut bytes = vec![1u8, 0]; // share index 1
        bytes.extend_from_slice(&[0u8; 32]); // zero is not in the subgroup
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.sig_share(), Err(WireError::BadGroupElement));
    }
}
