//! Compact bitmaps — the NACK and vote fields of ConsensusBatcher packets.
//!
//! The paper's packets index bits by *instance* (the compressed O(N) NACK of
//! §IV-C1: bit `j` = "instance `j` still lacks a quorum at me") or by *node*.
//! Capacity is 64, comfortably above the paper's N = 4…16.

/// A fixed-capacity bitmap (up to 64 bits), one bit per instance or node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct Bitmap {
    bits: u64,
    len: u8,
}

impl Bitmap {
    /// An empty bitmap of logical length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn new(len: usize) -> Self {
        assert!(len <= 64, "bitmap capacity is 64, got {len}");
        // wbft-lint: allow(wire-safety) — len asserted ≤ 64 just above
        Bitmap { bits: 0, len: len as u8 }
    }

    /// A bitmap with every bit set.
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap::new(len);
        for i in 0..len {
            b.set(i, true);
        }
        b
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit {i} out of range {}", self.len);
        (self.bits >> i) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len(), "bit {i} out of range {}", self.len);
        if value {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` iff every bit is set.
    pub fn all(&self) -> bool {
        self.count() == self.len()
    }

    /// `true` iff no bit is set.
    pub fn none(&self) -> bool {
        self.bits == 0
    }

    /// Bitwise OR (lengths must match).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap { bits: self.bits | other.bits, len: self.len }
    }

    /// Iterates indices of set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |&i| self.get(i))
    }

    /// Wire length in bytes (`ceil(len/8)`).
    pub fn wire_len(&self) -> usize {
        self.len().div_ceil(8)
    }

    /// Raw word (little-endian bit order) for encoding.
    pub fn to_raw(&self) -> u64 {
        self.bits
    }

    /// Rebuilds from a raw word; bits beyond `len` are cleared.
    pub fn from_raw(bits: u64, len: usize) -> Self {
        assert!(len <= 64, "bitmap capacity is 64, got {len}");
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        // wbft-lint: allow(wire-safety) — len asserted ≤ 64 just above
        Bitmap { bits: bits & mask, len: len as u8 }
    }
}

impl core::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bitmap[")?;
        for i in 0..self.len() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(8);
        assert!(b.none());
        b.set(0, true);
        b.set(7, true);
        assert!(b.get(0) && b.get(7) && !b.get(3));
        assert_eq!(b.count(), 2);
        b.set(0, false);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn full_and_all() {
        let b = Bitmap::full(5);
        assert!(b.all());
        assert_eq!(b.count(), 5);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn union_merges() {
        let mut a = Bitmap::new(4);
        a.set(0, true);
        let mut b = Bitmap::new(4);
        b.set(3, true);
        let u = a.union(&b);
        assert_eq!(u.iter_set().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn raw_roundtrip_masks_excess() {
        let b = Bitmap::from_raw(0b1111_1111, 4);
        assert_eq!(b.count(), 4);
        assert_eq!(b.to_raw(), 0b1111);
        let c = Bitmap::from_raw(b.to_raw(), 4);
        assert_eq!(b, c);
    }

    #[test]
    fn wire_len_rounds_up() {
        assert_eq!(Bitmap::new(1).wire_len(), 1);
        assert_eq!(Bitmap::new(8).wire_len(), 1);
        assert_eq!(Bitmap::new(9).wire_len(), 2);
        assert_eq!(Bitmap::new(64).wire_len(), 8);
    }

    #[test]
    fn capacity_64_works() {
        let mut b = Bitmap::new(64);
        b.set(63, true);
        assert!(b.get(63));
        assert_eq!(Bitmap::from_raw(u64::MAX, 64).count(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(4).get(4);
    }

    #[test]
    fn debug_shows_bits() {
        let mut b = Bitmap::new(3);
        b.set(1, true);
        assert_eq!(format!("{b:?}"), "Bitmap[010]");
    }
}
