#![forbid(unsafe_code)]
// Totality backstop (type-aware side of wbft-lint's T1 rule): protocol
// paths must not panic via unwrap/expect. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # wbft-net — the ConsensusBatcher packet module
//!
//! Wire-format layer of the reproduction of *"Asynchronous BFT Consensus
//! Made Wireless"* (ICDCS 2025): the batched packet structures of Figs. 4–6,
//! their per-instance baseline counterparts, compressed O(N) NACK bitmaps,
//! NACK-driven retransmission policy, and the Table I message-overhead
//! closed forms.
//!
//! The central idea of ConsensusBatcher lives in these packet layouts:
//! *vertical batching* merges the same phase of N parallel component
//! instances into one frame (one channel access instead of N), and
//! *horizontal batching* folds a component's phases — ECHO with READY,
//! INITIAL with the vote phases for small values — into that same frame.
//!
//! Every packet encodes twice: once into real bytes for the simulation, and
//! once through a counting sink that prices crypto fields at the paper's
//! curve sizes (a 21-byte BN158 threshold signature, a 40-byte secp160r1
//! packet signature). Airtime is charged on the latter, so packet-size
//! effects match the paper's testbed rather than this crate's substitute
//! crypto — see [`wire`].
//!
//! ## Example
//!
//! ```rust
//! use wbft_net::{Bitmap, Body, Envelope, Sizing};
//! use wbft_crypto::{schnorr::KeyPair, EcdsaCurve, Digest32};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let kp = KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng);
//! let env = Envelope {
//!     src: 1,
//!     session: 7,
//!     body: Body::RbcEchoReady {
//!         roots: vec![Digest32::of(b"p0"); 4],
//!         echo: Bitmap::full(4),
//!         ready: Bitmap::new(4),
//!         echo_nack: Bitmap::new(4),
//!         ready_nack: Bitmap::new(4),
//!         init_nack: Bitmap::new(4),
//!     },
//! };
//! let (bytes, nominal) = env.seal(&kp, &Sizing::light(4))?;
//! let (opened, sig_ok) = Envelope::open(&bytes, |_| Some(kp.public()))?;
//! assert!(sig_ok && opened == env && nominal <= 255);
//! # Ok::<(), wbft_net::WireError>(())
//! ```

pub mod bitmap;
pub mod datagram;
pub mod overhead;
pub mod packets;
pub mod reliability;
pub mod vote;
pub mod wire;

pub use bitmap::Bitmap;
pub use datagram::{Datagram, MAX_DATAGRAM_PAYLOAD};
pub use packets::{AbaLcInst, AbaScInst, Body, Envelope};
pub use reliability::RetransmitPolicy;
pub use vote::{BinValues, Vote};
pub use wire::{CoinFlavor, Sizing, WireError};
