//! Versioned datagram framing for real-network transports.
//!
//! The simulator hands `Frame`s between behaviors in-process; a socket
//! transport needs the same information to survive a trip through one UDP
//! datagram: who sent it, which logical radio channel
//! it belongs to, and the *nominal* wire length (the paper-sized byte count
//! airtime and byte counters charge — the real payload uses this crate's
//! substitute crypto sizes, so the two differ).
//!
//! Layout (little-endian, fixed 12-byte header + length-prefixed payload):
//!
//! ```text
//! magic     u32   0x57424654 ("WBFT")
//! version   u8    1
//! src       u16   sending NodeId
//! channel   u8    logical ChannelId
//! nominal   u32   nominal wire length in bytes
//! payload   u16-length-prefixed bytes (the sealed Envelope)
//! ```
//!
//! Decoding is length-checked and never panics: short, truncated, garbage
//! or version-skewed input yields a [`WireError`] the transport counts as a
//! drop — exactly how the simulator models a corrupt frame as loss.

use crate::wire::{ByteSink, Sink, WireError, WireReader};
use bytes::Bytes;

/// Frame marker: `"WBFT"` as a big-endian u32, written little-endian.
pub const MAGIC: u32 = 0x5742_4654;

/// Current framing version; bumped on layout changes.
pub const VERSION: u8 = 1;

/// Fixed header bytes before the length-prefixed payload.
pub const HEADER_BYTES: usize = 4 + 1 + 2 + 1 + 4;

/// Largest payload a frame may carry: the UDP/IPv4 maximum datagram payload
/// (65_507 bytes) minus this header and the u16 payload-length prefix.
pub const MAX_DATAGRAM_PAYLOAD: usize = 65_507 - HEADER_BYTES - 2;

/// One transport frame: the on-the-wire form of a broadcast command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node id.
    pub src: u16,
    /// Logical radio channel the frame was broadcast on.
    pub channel: u8,
    /// Nominal (paper-sized) wire length; the receiver's metrics and the
    /// delivered `Frame::nominal_len` use this, not `payload.len()`.
    pub nominal_len: u32,
    /// The sealed envelope bytes.
    pub payload: Bytes,
}

impl Datagram {
    /// Encodes into one UDP-sized datagram.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] when the payload exceeds
    /// [`MAX_DATAGRAM_PAYLOAD`] (it could never be carried in one UDP
    /// datagram, so the send must be refused rather than truncated).
    pub fn encode(&self) -> Result<Bytes, WireError> {
        if self.payload.len() > MAX_DATAGRAM_PAYLOAD {
            return Err(WireError::Oversize("datagram payload"));
        }
        let mut sink = ByteSink::new();
        sink.u32(MAGIC);
        sink.u8(VERSION);
        sink.u16(self.src);
        sink.u8(self.channel);
        sink.u32(self.nominal_len);
        sink.bytes(&self.payload)?;
        Ok(sink.into_bytes())
    }

    /// Decodes one received datagram. Never panics.
    ///
    /// # Errors
    ///
    /// * [`WireError::Truncated`] — too short for the header or the
    ///   declared payload length;
    /// * [`WireError::Malformed`] — wrong magic, unsupported version, or
    ///   trailing bytes after the payload (a frame is exactly one
    ///   datagram).
    pub fn decode(bytes: &[u8]) -> Result<Datagram, WireError> {
        let mut r = WireReader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(WireError::Malformed("datagram magic"));
        }
        if r.u8()? != VERSION {
            return Err(WireError::Malformed("datagram version"));
        }
        let src = r.u16()?;
        let channel = r.u8()?;
        let nominal_len = r.u32()?;
        let payload = r.bytes()?;
        if r.remaining() != 0 {
            return Err(WireError::Malformed("datagram trailing bytes"));
        }
        Ok(Datagram { src, channel, nominal_len, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Datagram {
        Datagram {
            src: 3,
            channel: 1,
            nominal_len: 217,
            payload: Bytes::from_static(b"sealed-envelope"),
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let bytes = d.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES + 2 + d.payload.len());
        assert_eq!(Datagram::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let d = Datagram { payload: Bytes::new(), ..sample() };
        assert_eq!(Datagram::decode(&d.encode().unwrap()).unwrap(), d);
    }

    #[test]
    fn max_payload_encodes_one_over_errors() {
        let d = Datagram { payload: Bytes::from(vec![0; MAX_DATAGRAM_PAYLOAD]), ..sample() };
        let bytes = d.encode().unwrap();
        assert_eq!(bytes.len(), 65_507);
        assert_eq!(Datagram::decode(&bytes).unwrap().payload.len(), MAX_DATAGRAM_PAYLOAD);
        let over =
            Datagram { payload: Bytes::from(vec![0; MAX_DATAGRAM_PAYLOAD + 1]), ..sample() };
        assert_eq!(over.encode(), Err(WireError::Oversize("datagram payload")));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut bytes = sample().encode().unwrap().to_vec();
        bytes[0] ^= 0xff;
        assert_eq!(Datagram::decode(&bytes), Err(WireError::Malformed("datagram magic")));
        let mut bytes = sample().encode().unwrap().to_vec();
        bytes[4] = VERSION + 1;
        assert_eq!(Datagram::decode(&bytes), Err(WireError::Malformed("datagram version")));
    }

    #[test]
    fn truncation_at_every_length_errors_without_panicking() {
        let bytes = sample().encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(Datagram::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode().unwrap().to_vec();
        bytes.push(0);
        assert_eq!(
            Datagram::decode(&bytes),
            Err(WireError::Malformed("datagram trailing bytes"))
        );
    }
}
