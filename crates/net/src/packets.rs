//! ConsensusBatcher packet structures (paper Figs. 4, 5, 6) and their
//! per-instance baseline counterparts.
//!
//! Every packet payload follows the paper's four-part split — header, NACK,
//! value, signature (§IV-B1). *Batched* packets carry the state of all `N`
//! parallel instances of a component and are the unit of one channel access;
//! *baseline* packets carry one phase of one instance each, reproducing the
//! unbatched deployment the paper compares against.
//!
//! A body encodes through the dual-mode [`Sink`](crate::wire::Sink); see
//! [`crate::wire`] for how nominal (paper-sized) lengths are derived.

use crate::bitmap::Bitmap;
use crate::vote::{BinValues, Vote};
use crate::wire::{ByteSink, CoinFlavor, CountSink, Sink, Sizing, WireError, WireReader};
use bytes::Bytes;
use wbft_crypto::hash::Digest32;
use wbft_crypto::schnorr::{KeyPair, PublicKey, Signature};
use wbft_crypto::thresh_coin::CoinShare;
use wbft_crypto::thresh_enc::DecShare;
use wbft_crypto::thresh_sig::{SigShare, ThresholdSignature};
use wbft_crypto::{GroupElem, Scalar};

/// Per-instance entry of a batched Bracha-ABA packet (Fig. 6a): the node's
/// current reports for all three phase-RBCs of its active round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbaLcInst {
    /// Which ABA instance.
    pub instance: u8,
    /// The node's active round.
    pub round: u16,
    /// `reports[phase][voter]` — the vote this node relays for `voter` in
    /// `phase` (Bracha-RBC echo semantics; `Unknown` = nothing seen).
    pub reports: [Vec<Vote>; 3],
    /// Decided output, if any (`Unknown` = undecided).
    pub decided: Vote,
}

/// Per-instance entry of a batched shared-coin-ABA packet (Fig. 6b).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbaScInst {
    /// Which ABA instance.
    pub instance: u8,
    /// The node's active round.
    pub round: u16,
    /// BVAL values this node has broadcast this round.
    pub bval: BinValues,
    /// AUX vote this round (`Unknown` = not yet sent).
    pub aux: Vote,
    /// Decided output, if any.
    pub decided: Vote,
}

/// All protocol packet bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    // ------------------------------------------------------ batched RBC
    /// INITIAL phase of batched RBC (Fig. 4a, `RBC_INIT`): one fragment of
    /// the sender's proposal plus the batched `Initial_nack`.
    RbcInit {
        /// Instance (= proposer) id.
        instance: u8,
        /// Fragment index within the proposal.
        frag: u8,
        /// Total fragments of the proposal.
        frag_total: u8,
        /// Merkle root identifying the proposal.
        root: Digest32,
        /// Fragment payload.
        data: Bytes,
        /// Bit `j` set = "I am still missing instance `j`'s proposal".
        init_nack: Bitmap,
    },
    /// Batched ECHO+READY phases of N RBC instances (Fig. 4a, `RBC_ER`).
    RbcEchoReady {
        /// `roots[j]` = proposal root of instance `j` as this node knows it
        /// (zero digest = unknown) — the `Hash` part of the packet.
        roots: Vec<Digest32>,
        /// Bit `j` = this node echoes instance `j`.
        echo: Bitmap,
        /// Bit `j` = this node is ready on instance `j`.
        ready: Bitmap,
        /// Compressed O(N) NACK: bit `j` = instance `j` lacks 2f+1 echoes.
        echo_nack: Bitmap,
        /// Compressed O(N) NACK for readies.
        ready_nack: Bitmap,
        /// Bit `j` = still missing instance `j`'s proposal fragments.
        init_nack: Bitmap,
    },
    // ------------------------------------------------------ batched CBC
    /// INITIAL phase of batched CBC (Fig. 4b, `CBC_INIT`).
    CbcInit {
        /// Instance (= proposer) id.
        instance: u8,
        /// Fragment index.
        frag: u8,
        /// Total fragments.
        frag_total: u8,
        /// Root identifying the value.
        root: Digest32,
        /// Fragment payload.
        data: Bytes,
        /// Missing-proposal NACK.
        init_nack: Bitmap,
    },
    /// Batched ECHO+FINISH of N CBC instances (Fig. 4b, `CBC_EF`): echo
    /// signature shares (logically N-to-1 to each leader) and combined
    /// FINISH signatures, in one frame.
    CbcEchoFinish {
        /// Known value roots per instance (zero = unknown).
        roots: Vec<Digest32>,
        /// This node's echo shares, one per instance it has received.
        echo_shares: Vec<(u8, SigShare)>,
        /// Combined FINISH signatures this node holds (as leader or relay).
        finish_sigs: Vec<(u8, ThresholdSignature)>,
        /// Bit `j` = instance `j` lacks an echo quorum at its leader.
        echo_nack: Bitmap,
        /// Bit `j` = this node lacks instance `j`'s FINISH signature.
        finish_nack: Bitmap,
        /// Missing-proposal NACK.
        init_nack: Bitmap,
    },
    // ------------------------------------------------------ batched PRBC
    /// Batched DONE phase of N PRBC instances (Fig. 4c): threshold
    /// signature shares attesting delivery, and combined proofs.
    PrbcDone {
        /// Delivered roots per instance (zero = not delivered yet).
        roots: Vec<Digest32>,
        /// This node's DONE shares for instances it delivered.
        shares: Vec<(u8, SigShare)>,
        /// Combined delivery proofs this node holds.
        proofs: Vec<(u8, ThresholdSignature)>,
        /// Bit `j` = this node lacks instance `j`'s combined proof.
        sig_nack: Bitmap,
    },
    // ------------------------------------------------------ small variants
    /// N parallel RBC instances with 2-bit proposals, INITIAL folded into
    /// the vote phases (Fig. 5a, `RBC-small`).
    RbcSmall {
        /// `values[j]` = instance `j`'s proposal as known (the `Initial`
        /// field: 2 bits each).
        values: Vec<Vote>,
        /// Bit `j` = this node echoes instance `j`'s value.
        echo: Bitmap,
        /// Bit `j` = this node is ready on instance `j`.
        ready: Bitmap,
        /// Missing-initial NACK.
        init_nack: Bitmap,
        /// Compressed echo NACK.
        echo_nack: Bitmap,
        /// Compressed ready NACK.
        ready_nack: Bitmap,
    },
    /// N parallel CBC instances with node-id-list proposals (Fig. 5b,
    /// `CBC-small`), INITIAL folded in: the value is an N-bit set.
    CbcSmall {
        /// `values[j]` = instance `j`'s id-list (empty bitmap = unknown).
        values: Vec<Bitmap>,
        /// Echo signature shares.
        echo_shares: Vec<(u8, SigShare)>,
        /// Combined FINISH signatures.
        finish_sigs: Vec<(u8, ThresholdSignature)>,
        /// Missing-initial NACK.
        init_nack: Bitmap,
        /// Echo-quorum NACK.
        echo_nack: Bitmap,
        /// Missing-finish NACK.
        finish_nack: Bitmap,
    },
    // ------------------------------------------------------ batched ABA
    /// k parallel Bracha-ABA instances (Fig. 6a): three phase-RBC report
    /// lattices per instance, plus `Round_nack`/`Round_nack_ext` folded into
    /// the per-instance round numbers.
    AbaLc {
        /// Per-instance state.
        insts: Vec<AbaLcInst>,
    },
    /// k parallel shared-coin-ABA instances (Fig. 6b): BVAL/AUX votes per
    /// instance and *one* coin share per round shared by all instances
    /// (Technical Challenge III).
    AbaSc {
        /// Which coin deployment the shares belong to.
        flavor: CoinFlavor,
        /// Per-instance state.
        insts: Vec<AbaScInst>,
        /// Coin shares by round.
        coin_shares: Vec<(u16, CoinShare)>,
        /// Bit per node = "I lack a coin share from them" (Share_nack).
        share_nack: Bitmap,
    },
    // ------------------------------------------------------ baseline RBC
    /// Baseline (unbatched) RBC INITIAL — one instance, one channel access.
    BaseRbcInit {
        /// Instance id.
        instance: u8,
        /// Fragment index.
        frag: u8,
        /// Total fragments.
        frag_total: u8,
        /// Proposal root.
        root: Digest32,
        /// Fragment payload.
        data: Bytes,
    },
    /// Baseline RBC ECHO.
    BaseRbcEcho {
        /// Instance id.
        instance: u8,
        /// Echoed proposal root.
        root: Digest32,
    },
    /// Baseline RBC READY.
    BaseRbcReady {
        /// Instance id.
        instance: u8,
        /// Ready proposal root.
        root: Digest32,
    },
    /// Baseline CBC ECHO (signature share back to the leader).
    BaseCbcEcho {
        /// Instance id.
        instance: u8,
        /// Echoed value root.
        root: Digest32,
        /// This node's echo share.
        share: SigShare,
    },
    /// Baseline CBC FINISH (combined signature from the leader).
    BaseCbcFinish {
        /// Instance id.
        instance: u8,
        /// Finished value root.
        root: Digest32,
        /// The combined signature.
        sig: ThresholdSignature,
    },
    /// Baseline PRBC DONE share.
    BasePrbcDone {
        /// Instance id.
        instance: u8,
        /// Delivered root.
        root: Digest32,
        /// This node's DONE share.
        share: SigShare,
    },
    /// Baseline shared-coin ABA BVAL vote.
    BaseAbaBval {
        /// Instance id.
        instance: u8,
        /// Round.
        round: u16,
        /// The vote.
        value: bool,
    },
    /// Baseline shared-coin ABA AUX vote.
    BaseAbaAux {
        /// Instance id.
        instance: u8,
        /// Round.
        round: u16,
        /// The vote.
        value: bool,
    },
    /// Baseline coin share.
    BaseAbaCoin {
        /// Instance id.
        instance: u8,
        /// Round.
        round: u16,
        /// Coin deployment.
        flavor: CoinFlavor,
        /// The share.
        share: CoinShare,
    },
    /// Baseline decided broadcast (termination gossip).
    BaseAbaDecided {
        /// Instance id.
        instance: u8,
        /// Decided value.
        value: bool,
    },
    /// Baseline Bracha-ABA phase-vote report (one voter's vote relayed —
    /// this per-report granularity is what makes unbatched ABA-LC O(N³)).
    BaseAbaLcReport {
        /// Instance id.
        instance: u8,
        /// Round.
        round: u16,
        /// Phase (0..3).
        phase: u8,
        /// Whose vote is being reported.
        voter: u8,
        /// The reported vote.
        value: Vote,
    },
    // ------------------------------------------------------ consensus layer
    /// Batched threshold-decryption shares for an epoch's accepted
    /// ciphertexts (HoneyBadger/BEAT decryption round).
    DecShareBatch {
        /// `(proposer, share)` pairs for each accepted ciphertext.
        shares: Vec<(u8, DecShare)>,
        /// Bit `j` = this node still lacks a decryption quorum for
        /// proposer `j`'s ciphertext.
        dec_nack: Bitmap,
    },
    /// Baseline single decryption share.
    BaseDecShare {
        /// Whose ciphertext.
        proposer: u8,
        /// The share.
        share: DecShare,
    },
    /// Multi-hop: a cluster member's complaint that the current leader
    /// misrepresented the cluster decision on the global channel, carrying
    /// the digest the cluster actually decided (§V-B leader replacement).
    Complaint {
        /// Epoch the complaint refers to.
        epoch: u64,
        /// The accused leader.
        accused: u16,
        /// Digest of the correct cluster decision.
        digest: Digest32,
    },
    /// Multi-hop: the cluster leader's announcement of the global consensus
    /// outcome for an epoch, broadcast once on the cluster channel.
    GlobalDecision {
        /// Epoch the decision belongs to.
        epoch: u64,
        /// Digest of the global block.
        digest: Digest32,
        /// Transactions ordered globally in this epoch (for reporting).
        tx_count: u32,
    },
    /// Membership: one canonical dealer's resharing of all threshold key
    /// sets toward a new committee configuration. The deal set itself is
    /// opaque bytes (`wbft_membership::DealSet` codec) so the wire layer
    /// stays independent of membership types; dealers are identified by
    /// *global* node id.
    Reshare {
        /// Key epoch the ceremony produces (the new configuration's).
        key_epoch: u64,
        /// Dealer's global node id.
        dealer: u16,
        /// Encoded `DealSet`.
        deal: Bytes,
    },
}

impl Body {
    /// Discriminant byte for encoding.
    fn kind(&self) -> u8 {
        match self {
            Body::RbcInit { .. } => 0,
            Body::RbcEchoReady { .. } => 1,
            Body::CbcInit { .. } => 2,
            Body::CbcEchoFinish { .. } => 3,
            Body::PrbcDone { .. } => 4,
            Body::RbcSmall { .. } => 5,
            Body::CbcSmall { .. } => 6,
            Body::AbaLc { .. } => 7,
            Body::AbaSc { .. } => 8,
            Body::BaseRbcInit { .. } => 9,
            Body::BaseRbcEcho { .. } => 10,
            Body::BaseRbcReady { .. } => 11,
            Body::BaseCbcEcho { .. } => 12,
            Body::BaseCbcFinish { .. } => 13,
            Body::BasePrbcDone { .. } => 14,
            Body::BaseAbaBval { .. } => 15,
            Body::BaseAbaAux { .. } => 16,
            Body::BaseAbaCoin { .. } => 17,
            Body::BaseAbaDecided { .. } => 18,
            Body::BaseAbaLcReport { .. } => 19,
            Body::DecShareBatch { .. } => 20,
            Body::BaseDecShare { .. } => 21,
            Body::Complaint { .. } => 22,
            Body::GlobalDecision { .. } => 23,
            Body::Reshare { .. } => 24,
        }
    }

    /// Stable transmit-queue slot for this body: two bodies with the same
    /// slot carry *versions of the same logical packet* (a combined
    /// ConsensusBatcher packet, a specific INITIAL fragment, a specific
    /// per-instance baseline vote), so a newer one may replace an older one
    /// still waiting in the radio queue. Bodies that must never replace
    /// each other (different fragments, different vote values, different
    /// rounds) get distinct slots.
    pub fn slot_key(&self) -> u64 {
        let kind = self.kind() as u64;
        let sub = match self {
            // Combined packets: one live version per component session.
            Body::RbcEchoReady { .. }
            | Body::CbcEchoFinish { .. }
            | Body::PrbcDone { .. }
            | Body::RbcSmall { .. }
            | Body::CbcSmall { .. }
            | Body::AbaLc { .. }
            | Body::AbaSc { .. }
            | Body::DecShareBatch { .. } => 0,
            // Fragments: distinct per (instance, fragment).
            Body::RbcInit { instance, frag, .. }
            | Body::CbcInit { instance, frag, .. }
            | Body::BaseRbcInit { instance, frag, .. } => {
                (*instance as u64) << 8 | *frag as u64
            }
            // Baseline per-instance votes: distinct per identifying fields.
            Body::BaseRbcEcho { instance, .. } | Body::BaseRbcReady { instance, .. } => {
                *instance as u64
            }
            Body::BaseCbcEcho { instance, .. }
            | Body::BaseCbcFinish { instance, .. }
            | Body::BasePrbcDone { instance, .. } => *instance as u64,
            Body::BaseAbaBval { instance, round, value } => {
                (*instance as u64) << 24 | (*round as u64) << 8 | *value as u64
            }
            Body::BaseAbaAux { instance, round, value } => {
                (*instance as u64) << 24 | (*round as u64) << 8 | *value as u64
            }
            Body::BaseAbaCoin { instance, round, .. } => {
                (*instance as u64) << 24 | (*round as u64) << 8
            }
            Body::BaseAbaDecided { instance, .. } => *instance as u64,
            Body::BaseAbaLcReport { instance, round, phase, voter, .. } => {
                (*instance as u64) << 32
                    | (*round as u64) << 16
                    | (*phase as u64) << 8
                    | *voter as u64
            }
            Body::BaseDecShare { proposer, .. } => *proposer as u64,
            Body::Complaint { epoch, .. } => *epoch,
            Body::GlobalDecision { epoch, .. } => *epoch,
            // One live deal per (dealer, key epoch): a retransmission may
            // supersede its own queued copy, never another dealer's.
            Body::Reshare { key_epoch, dealer, .. } => *key_epoch << 16 | *dealer as u64,
        };
        kind << 48 | sub
    }

    /// Encodes the body (without header or signature) into a sink.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] when a variable-length field (fragment data,
    /// bitmap, list count) does not fit its wire-format length prefix — the
    /// caller drops the message instead of aborting the node.
    pub fn encode_into(&self, s: &mut impl Sink) -> Result<(), WireError> {
        s.u8(self.kind());
        match self {
            Body::RbcInit { instance, frag, frag_total, root, data, init_nack }
            | Body::CbcInit { instance, frag, frag_total, root, data, init_nack } => {
                s.u8(*instance);
                s.u8(*frag);
                s.u8(*frag_total);
                s.digest(root);
                s.bytes(data)?;
                s.bitmap(init_nack)?;
            }
            Body::RbcEchoReady { roots, echo, ready, echo_nack, ready_nack, init_nack } => {
                encode_roots(s, roots)?;
                s.bitmap(echo)?;
                s.bitmap(ready)?;
                s.bitmap(echo_nack)?;
                s.bitmap(ready_nack)?;
                s.bitmap(init_nack)?;
            }
            Body::CbcEchoFinish {
                roots,
                echo_shares,
                finish_sigs,
                echo_nack,
                finish_nack,
                init_nack,
            } => {
                encode_roots(s, roots)?;
                s.count8(echo_shares.len())?;
                for (i, share) in echo_shares {
                    s.u8(*i);
                    s.sig_share(share);
                }
                s.count8(finish_sigs.len())?;
                for (i, sig) in finish_sigs {
                    s.u8(*i);
                    s.thresh_sig(sig);
                }
                s.bitmap(echo_nack)?;
                s.bitmap(finish_nack)?;
                s.bitmap(init_nack)?;
            }
            Body::PrbcDone { roots, shares, proofs, sig_nack } => {
                encode_roots(s, roots)?;
                s.count8(shares.len())?;
                for (i, share) in shares {
                    s.u8(*i);
                    s.sig_share(share);
                }
                s.count8(proofs.len())?;
                for (i, sig) in proofs {
                    s.u8(*i);
                    s.thresh_sig(sig);
                }
                s.bitmap(sig_nack)?;
            }
            Body::RbcSmall { values, echo, ready, init_nack, echo_nack, ready_nack } => {
                encode_votes(s, values)?;
                s.bitmap(echo)?;
                s.bitmap(ready)?;
                s.bitmap(init_nack)?;
                s.bitmap(echo_nack)?;
                s.bitmap(ready_nack)?;
            }
            Body::CbcSmall {
                values,
                echo_shares,
                finish_sigs,
                init_nack,
                echo_nack,
                finish_nack,
            } => {
                s.count8(values.len())?;
                for v in values {
                    s.bitmap(v)?;
                }
                s.count8(echo_shares.len())?;
                for (i, share) in echo_shares {
                    s.u8(*i);
                    s.sig_share(share);
                }
                s.count8(finish_sigs.len())?;
                for (i, sig) in finish_sigs {
                    s.u8(*i);
                    s.thresh_sig(sig);
                }
                s.bitmap(init_nack)?;
                s.bitmap(echo_nack)?;
                s.bitmap(finish_nack)?;
            }
            Body::AbaLc { insts } => {
                s.count8(insts.len())?;
                for inst in insts {
                    s.u8(inst.instance);
                    s.u16(inst.round);
                    s.u8(inst.decided.code());
                    for phase in &inst.reports {
                        encode_votes(s, phase)?;
                    }
                }
            }
            Body::AbaSc { flavor, insts, coin_shares, share_nack } => {
                s.u8(match flavor {
                    CoinFlavor::ThreshSig => 0,
                    CoinFlavor::CoinFlip => 1,
                });
                s.count8(insts.len())?;
                for inst in insts {
                    s.u8(inst.instance);
                    s.u16(inst.round);
                    s.u8(inst.bval.code() | (inst.aux.code() << 2) | (inst.decided.code() << 4));
                }
                s.count8(coin_shares.len())?;
                for (round, share) in coin_shares {
                    s.u16(*round);
                    s.coin_share(share, *flavor);
                }
                s.bitmap(share_nack)?;
            }
            Body::BaseRbcInit { instance, frag, frag_total, root, data } => {
                s.u8(*instance);
                s.u8(*frag);
                s.u8(*frag_total);
                s.digest(root);
                s.bytes(data)?;
            }
            Body::BaseRbcEcho { instance, root } | Body::BaseRbcReady { instance, root } => {
                s.u8(*instance);
                s.digest(root);
            }
            Body::BaseCbcEcho { instance, root, share } => {
                s.u8(*instance);
                s.digest(root);
                s.sig_share(share);
            }
            Body::BaseCbcFinish { instance, root, sig } => {
                s.u8(*instance);
                s.digest(root);
                s.thresh_sig(sig);
            }
            Body::BasePrbcDone { instance, root, share } => {
                s.u8(*instance);
                s.digest(root);
                s.sig_share(share);
            }
            Body::BaseAbaBval { instance, round, value }
            | Body::BaseAbaAux { instance, round, value } => {
                s.u8(*instance);
                s.u16(*round);
                s.u8(u8::from(*value));
            }
            Body::BaseAbaCoin { instance, round, flavor, share } => {
                s.u8(*instance);
                s.u16(*round);
                s.u8(match flavor {
                    CoinFlavor::ThreshSig => 0,
                    CoinFlavor::CoinFlip => 1,
                });
                s.coin_share(share, *flavor);
            }
            Body::BaseAbaDecided { instance, value } => {
                s.u8(*instance);
                s.u8(u8::from(*value));
            }
            Body::BaseAbaLcReport { instance, round, phase, voter, value } => {
                s.u8(*instance);
                s.u16(*round);
                s.u8(*phase);
                s.u8(*voter);
                s.u8(value.code());
            }
            Body::DecShareBatch { shares, dec_nack } => {
                s.count8(shares.len())?;
                for (i, share) in shares {
                    s.u8(*i);
                    s.dec_share(share);
                }
                s.bitmap(dec_nack)?;
            }
            Body::BaseDecShare { proposer, share } => {
                s.u8(*proposer);
                s.dec_share(share);
            }
            Body::Complaint { epoch, accused, digest } => {
                s.u64(*epoch);
                s.u16(*accused);
                s.digest(digest);
            }
            Body::GlobalDecision { epoch, digest, tx_count } => {
                s.u64(*epoch);
                s.digest(digest);
                s.u32(*tx_count);
            }
            Body::Reshare { key_epoch, dealer, deal } => {
                s.u64(*key_epoch);
                s.u16(*dealer);
                s.bytes(deal)?;
            }
        }
        Ok(())
    }

    /// Decodes a body.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on truncation, bad group elements, or unknown
    /// discriminants.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Body, WireError> {
        let kind = r.u8()?;
        Ok(match kind {
            0 | 2 => {
                let instance = r.u8()?;
                let frag = r.u8()?;
                let frag_total = r.u8()?;
                let root = r.digest()?;
                let data = r.bytes()?;
                let init_nack = r.bitmap()?;
                if kind == 0 {
                    Body::RbcInit { instance, frag, frag_total, root, data, init_nack }
                } else {
                    Body::CbcInit { instance, frag, frag_total, root, data, init_nack }
                }
            }
            1 => Body::RbcEchoReady {
                roots: decode_roots(r)?,
                echo: r.bitmap()?,
                ready: r.bitmap()?,
                echo_nack: r.bitmap()?,
                ready_nack: r.bitmap()?,
                init_nack: r.bitmap()?,
            },
            3 => {
                let roots = decode_roots(r)?;
                let echo_shares = decode_indexed(r, WireReader::sig_share)?;
                let finish_sigs = decode_indexed(r, WireReader::thresh_sig)?;
                Body::CbcEchoFinish {
                    roots,
                    echo_shares,
                    finish_sigs,
                    echo_nack: r.bitmap()?,
                    finish_nack: r.bitmap()?,
                    init_nack: r.bitmap()?,
                }
            }
            4 => {
                let roots = decode_roots(r)?;
                let shares = decode_indexed(r, WireReader::sig_share)?;
                let proofs = decode_indexed(r, WireReader::thresh_sig)?;
                Body::PrbcDone { roots, shares, proofs, sig_nack: r.bitmap()? }
            }
            5 => Body::RbcSmall {
                values: decode_votes(r)?,
                echo: r.bitmap()?,
                ready: r.bitmap()?,
                init_nack: r.bitmap()?,
                echo_nack: r.bitmap()?,
                ready_nack: r.bitmap()?,
            },
            6 => {
                let count = r.u8()? as usize;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(r.bitmap()?);
                }
                let echo_shares = decode_indexed(r, WireReader::sig_share)?;
                let finish_sigs = decode_indexed(r, WireReader::thresh_sig)?;
                Body::CbcSmall {
                    values,
                    echo_shares,
                    finish_sigs,
                    init_nack: r.bitmap()?,
                    echo_nack: r.bitmap()?,
                    finish_nack: r.bitmap()?,
                }
            }
            7 => {
                let count = r.u8()? as usize;
                let mut insts = Vec::with_capacity(count);
                for _ in 0..count {
                    let instance = r.u8()?;
                    let round = r.u16()?;
                    let decided = Vote::from_code(r.u8()?);
                    let reports = [decode_votes(r)?, decode_votes(r)?, decode_votes(r)?];
                    insts.push(AbaLcInst { instance, round, reports, decided });
                }
                Body::AbaLc { insts }
            }
            8 => {
                let flavor =
                    if r.u8()? == 0 { CoinFlavor::ThreshSig } else { CoinFlavor::CoinFlip };
                let count = r.u8()? as usize;
                let mut insts = Vec::with_capacity(count);
                for _ in 0..count {
                    let instance = r.u8()?;
                    let round = r.u16()?;
                    let packed = r.u8()?;
                    insts.push(AbaScInst {
                        instance,
                        round,
                        bval: BinValues::from_code(packed & 0b11),
                        aux: Vote::from_code((packed >> 2) & 0b11),
                        decided: Vote::from_code((packed >> 4) & 0b11),
                    });
                }
                let share_count = r.u8()? as usize;
                let mut coin_shares = Vec::with_capacity(share_count);
                for _ in 0..share_count {
                    let round = r.u16()?;
                    coin_shares.push((round, r.coin_share()?));
                }
                Body::AbaSc { flavor, insts, coin_shares, share_nack: r.bitmap()? }
            }
            9 => Body::BaseRbcInit {
                instance: r.u8()?,
                frag: r.u8()?,
                frag_total: r.u8()?,
                root: r.digest()?,
                data: r.bytes()?,
            },
            10 => Body::BaseRbcEcho { instance: r.u8()?, root: r.digest()? },
            11 => Body::BaseRbcReady { instance: r.u8()?, root: r.digest()? },
            12 => Body::BaseCbcEcho { instance: r.u8()?, root: r.digest()?, share: r.sig_share()? },
            13 => Body::BaseCbcFinish {
                instance: r.u8()?,
                root: r.digest()?,
                sig: r.thresh_sig()?,
            },
            14 => Body::BasePrbcDone {
                instance: r.u8()?,
                root: r.digest()?,
                share: r.sig_share()?,
            },
            15 => Body::BaseAbaBval { instance: r.u8()?, round: r.u16()?, value: r.u8()? != 0 },
            16 => Body::BaseAbaAux { instance: r.u8()?, round: r.u16()?, value: r.u8()? != 0 },
            17 => {
                let instance = r.u8()?;
                let round = r.u16()?;
                let flavor =
                    if r.u8()? == 0 { CoinFlavor::ThreshSig } else { CoinFlavor::CoinFlip };
                Body::BaseAbaCoin { instance, round, flavor, share: r.coin_share()? }
            }
            18 => Body::BaseAbaDecided { instance: r.u8()?, value: r.u8()? != 0 },
            19 => Body::BaseAbaLcReport {
                instance: r.u8()?,
                round: r.u16()?,
                phase: r.u8()?,
                voter: r.u8()?,
                value: Vote::from_code(r.u8()?),
            },
            20 => {
                let shares = decode_indexed(r, WireReader::dec_share)?;
                Body::DecShareBatch { shares, dec_nack: r.bitmap()? }
            }
            21 => Body::BaseDecShare { proposer: r.u8()?, share: r.dec_share()? },
            22 => Body::Complaint { epoch: r.u64()?, accused: r.u16()?, digest: r.digest()? },
            23 => Body::GlobalDecision {
                epoch: r.u64()?,
                digest: r.digest()?,
                tx_count: r.u32()?,
            },
            24 => Body::Reshare { key_epoch: r.u64()?, dealer: r.u16()?, deal: r.bytes()? },
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

fn encode_roots(s: &mut impl Sink, roots: &[Digest32]) -> Result<(), WireError> {
    s.count8(roots.len())?;
    for root in roots {
        s.digest(root);
    }
    Ok(())
}

fn decode_roots(r: &mut WireReader<'_>) -> Result<Vec<Digest32>, WireError> {
    let count = r.u8()? as usize;
    let mut roots = Vec::with_capacity(count);
    for _ in 0..count {
        roots.push(r.digest()?);
    }
    Ok(roots)
}

/// Votes are packed four per byte (2 bits each), matching the paper's
/// "2N bits" accounting.
fn encode_votes(s: &mut impl Sink, votes: &[Vote]) -> Result<(), WireError> {
    s.count8(votes.len())?;
    for chunk in votes.chunks(4) {
        let mut b = 0u8;
        for (i, v) in chunk.iter().enumerate() {
            b |= v.code() << (i * 2);
        }
        s.u8(b);
    }
    Ok(())
}

fn decode_votes(r: &mut WireReader<'_>) -> Result<Vec<Vote>, WireError> {
    let count = r.u8()? as usize;
    let mut votes = Vec::with_capacity(count);
    let nbytes = count.div_ceil(4);
    for _ in 0..nbytes {
        let b = r.u8()?;
        for i in 0..4 {
            if votes.len() < count {
                votes.push(Vote::from_code((b >> (i * 2)) & 0b11));
            }
        }
    }
    Ok(votes)
}

fn decode_indexed<'a, T>(
    r: &mut WireReader<'a>,
    read: impl Fn(&mut WireReader<'a>) -> Result<T, WireError>,
) -> Result<Vec<(u8, T)>, WireError> {
    let count = r.u8()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = r.u8()?;
        out.push((i, read(r)?));
    }
    Ok(out)
}

/// A full packet: header + body + packet signature (the paper's four-part
/// payload).
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sending node.
    pub src: u16,
    /// Protocol session the packet belongs to (epoch / component binding).
    pub session: u64,
    /// The payload.
    pub body: Body,
}

/// Nominal bytes charged for the paper's packet header (node identity,
/// packet type, routing information).
const HEADER_NOMINAL: usize = 8;

impl Envelope {
    /// Encodes and signs: returns `(bytes, nominal_len)`.
    ///
    /// The signature is a real Schnorr signature over the encoded header and
    /// body; the nominal length charges the micro-ecc curve's signature
    /// size from the sizing profile.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] when the body does not fit the wire format's
    /// length prefixes; callers drop the send instead of aborting.
    pub fn seal(&self, keypair: &KeyPair, sizing: &Sizing) -> Result<(Bytes, usize), WireError> {
        self.seal_tagged(keypair, sizing, 0)
    }

    /// [`Envelope::seal`] with a key-epoch tag binding share-carrying
    /// traffic to a threshold-key generation. The tag is *trailing-
    /// optional*: a zero tag (every pre-membership deployment) encodes to
    /// nothing, so churn-free byte streams are identical to the untagged
    /// format; a nonzero tag is appended after the body, inside the signed
    /// region.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] under the same conditions as
    /// [`Envelope::seal`].
    pub fn seal_tagged(
        &self,
        keypair: &KeyPair,
        sizing: &Sizing,
        key_epoch: u64,
    ) -> Result<(Bytes, usize), WireError> {
        let mut nominal = self.nominal_len(sizing)?;
        let mut sink = ByteSink::new();
        sink.u16(self.src);
        sink.u64(self.session);
        self.body.encode_into(&mut sink)?;
        if key_epoch != 0 {
            sink.u64(key_epoch);
            nominal += 8;
        }
        let sig = keypair.sign(sink.as_slice());
        sink.raw(&sig.r.to_bytes());
        sink.raw(&sig.z.to_bytes());
        Ok((sink.into_bytes(), nominal))
    }

    /// Nominal wire length under the paper's packet layout.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] under the same conditions as [`Envelope::seal`].
    pub fn nominal_len(&self, sizing: &Sizing) -> Result<usize, WireError> {
        let mut count = CountSink::new(*sizing);
        self.body.encode_into(&mut count)?;
        // The count included the real header fields through encode; replace
        // with the paper's header charge plus the packet signature.
        Ok(HEADER_NOMINAL
            + count.total()
            + sizing.suite.ecdsa.profile().signature_bytes)
    }

    /// Decodes and verifies a sealed packet.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes; `Ok((env, false))` when the bytes
    /// parse but the signature does not verify against `pk_of(src)` (the
    /// caller decides whether to drop — and charges verification cost
    /// either way, as the paper's nodes do).
    pub fn open(
        bytes: &[u8],
        pk_of: impl Fn(u16) -> Option<PublicKey>,
    ) -> Result<(Envelope, bool), WireError> {
        let (env, _, sig_ok) = Self::open_tagged(bytes, pk_of)?;
        Ok((env, sig_ok))
    }

    /// [`Envelope::open`], also recovering the key-epoch tag: `0` when the
    /// packet carries none (the pre-membership format), the signed trailing
    /// value otherwise. Callers drop packets whose tag does not match the
    /// key epoch they expect for the session — a stale-epoch share is
    /// rejected at the door, never handed to a combiner.
    ///
    /// # Errors
    ///
    /// [`WireError`] under the same conditions as [`Envelope::open`].
    pub fn open_tagged(
        bytes: &[u8],
        pk_of: impl Fn(u16) -> Option<PublicKey>,
    ) -> Result<(Envelope, u64, bool), WireError> {
        if bytes.len() < 64 {
            return Err(WireError::Truncated);
        }
        let (signed, sig_bytes) = bytes.split_at(bytes.len() - 64);
        let mut r = WireReader::new(signed);
        let src = r.u16()?;
        let session = r.u64()?;
        let body = Body::decode(&mut r)?;
        let key_epoch = match r.remaining() {
            0 => 0,
            8 => r.u64()?,
            _ => return Err(WireError::Malformed("trailing bytes")),
        };
        let r_bytes: [u8; 32] =
            sig_bytes.get(..32).and_then(|b| b.try_into().ok()).ok_or(WireError::Truncated)?;
        let z_bytes: [u8; 32] =
            sig_bytes.get(32..).and_then(|b| b.try_into().ok()).ok_or(WireError::Truncated)?;
        let sig_ok = match GroupElem::from_bytes(&r_bytes) {
            Ok(r_elem) => {
                let sig = Signature { r: r_elem, z: Scalar::from_bytes_reduced(&z_bytes) };
                pk_of(src).map(|pk| pk.verify(signed, &sig).is_ok()).unwrap_or(false)
            }
            Err(_) => false,
        };
        Ok((Envelope { src, session, body }, key_epoch, sig_ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wbft_crypto::{thresh_sig, EcdsaCurve, ThresholdCurve};

    fn keypair() -> KeyPair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng)
    }

    fn sample_bodies() -> Vec<Body> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (pks, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let share = sks[0].sign_share(b"m");
        let sig = pks.combine(&[share, sks[1].sign_share(b"m")]).unwrap();
        let (_, coin_secrets) =
            wbft_crypto::thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
        let coin = coin_secrets[0]
            .coin_share(wbft_crypto::thresh_coin::CoinName { session: 1, round: 0, domain: 0 });
        let (enc, enc_secrets) =
            wbft_crypto::thresh_enc::deal_enc(4, 1, ThresholdCurve::Bn158, &mut rng);
        let ct = enc.encrypt(b"l", b"pt", &mut rng);
        let dec = enc_secrets[0].dec_share(&ct);
        let d = Digest32::of(b"proposal");
        vec![
            Body::RbcInit {
                instance: 2,
                frag: 0,
                frag_total: 3,
                root: d,
                data: Bytes::from_static(b"fragment-data"),
                init_nack: Bitmap::from_raw(0b0101, 4),
            },
            Body::RbcEchoReady {
                roots: vec![d, Digest32::zero(), d, d],
                echo: Bitmap::from_raw(0b1101, 4),
                ready: Bitmap::from_raw(0b0001, 4),
                echo_nack: Bitmap::from_raw(0b0010, 4),
                ready_nack: Bitmap::from_raw(0b1110, 4),
                init_nack: Bitmap::new(4),
            },
            Body::CbcEchoFinish {
                roots: vec![d; 4],
                echo_shares: vec![(0, share), (3, share)],
                finish_sigs: vec![(1, sig)],
                echo_nack: Bitmap::new(4),
                finish_nack: Bitmap::full(4),
                init_nack: Bitmap::new(4),
            },
            Body::PrbcDone {
                roots: vec![d; 4],
                shares: vec![(2, share)],
                proofs: vec![(0, sig), (1, sig)],
                sig_nack: Bitmap::from_raw(0b1000, 4),
            },
            Body::RbcSmall {
                values: vec![Vote::One, Vote::Zero, Vote::Bot, Vote::Unknown],
                echo: Bitmap::from_raw(0b0111, 4),
                ready: Bitmap::new(4),
                init_nack: Bitmap::new(4),
                echo_nack: Bitmap::new(4),
                ready_nack: Bitmap::new(4),
            },
            Body::CbcSmall {
                values: vec![Bitmap::from_raw(0b0111, 4), Bitmap::new(4)],
                echo_shares: vec![(1, share)],
                finish_sigs: vec![],
                init_nack: Bitmap::new(4),
                echo_nack: Bitmap::new(4),
                finish_nack: Bitmap::new(4),
            },
            Body::AbaLc {
                insts: vec![AbaLcInst {
                    instance: 1,
                    round: 3,
                    reports: [
                        vec![Vote::One; 4],
                        vec![Vote::Unknown, Vote::Zero, Vote::Bot, Vote::One],
                        vec![Vote::Unknown; 4],
                    ],
                    decided: Vote::Unknown,
                }],
            },
            Body::AbaSc {
                flavor: CoinFlavor::ThreshSig,
                insts: vec![AbaScInst {
                    instance: 0,
                    round: 1,
                    bval: BinValues { zero: true, one: true },
                    aux: Vote::One,
                    decided: Vote::Unknown,
                }],
                coin_shares: vec![(1, coin)],
                share_nack: Bitmap::from_raw(0b0011, 4),
            },
            Body::BaseRbcInit {
                instance: 0,
                frag: 1,
                frag_total: 2,
                root: d,
                data: Bytes::from_static(b"x"),
            },
            Body::BaseRbcEcho { instance: 3, root: d },
            Body::BaseRbcReady { instance: 3, root: d },
            Body::BaseCbcEcho { instance: 1, root: d, share },
            Body::BaseCbcFinish { instance: 1, root: d, sig },
            Body::BasePrbcDone { instance: 2, root: d, share },
            Body::BaseAbaBval { instance: 0, round: 2, value: true },
            Body::BaseAbaAux { instance: 0, round: 2, value: false },
            Body::BaseAbaCoin { instance: 0, round: 2, flavor: CoinFlavor::CoinFlip, share: coin },
            Body::BaseAbaDecided { instance: 0, value: true },
            Body::BaseAbaLcReport {
                instance: 1,
                round: 0,
                phase: 2,
                voter: 3,
                value: Vote::Bot,
            },
            Body::DecShareBatch { shares: vec![(0, dec), (2, dec)], dec_nack: Bitmap::new(4) },
            Body::BaseDecShare { proposer: 1, share: dec },
            Body::Complaint { epoch: 9, accused: 2, digest: d },
            Body::GlobalDecision { epoch: 9, digest: d, tx_count: 120 },
            Body::Reshare {
                key_epoch: 3,
                dealer: 2,
                deal: Bytes::from_static(b"opaque-deal-set"),
            },
        ]
    }

    #[test]
    fn all_bodies_roundtrip() {
        for body in sample_bodies() {
            let mut sink = ByteSink::new();
            body.encode_into(&mut sink).unwrap();
            let bytes = sink.into_bytes();
            let mut r = WireReader::new(&bytes);
            let decoded = Body::decode(&mut r).unwrap_or_else(|e| panic!("{body:?}: {e}"));
            assert_eq!(decoded, body);
            assert_eq!(r.remaining(), 0, "{body:?} left bytes");
        }
    }

    #[test]
    fn envelope_seal_open_roundtrip() {
        let kp = keypair();
        let pk = kp.public();
        for body in sample_bodies() {
            let env = Envelope { src: 3, session: 42, body };
            let (bytes, nominal) = env.seal(&kp, &Sizing::light(4)).unwrap();
            assert!(nominal > 0);
            let (opened, sig_ok) = Envelope::open(&bytes, |_| Some(pk)).unwrap();
            assert_eq!(opened, env);
            assert!(sig_ok, "{:?}", env.body);
        }
    }

    #[test]
    fn tampered_envelope_fails_signature() {
        let kp = keypair();
        let env = Envelope {
            src: 0,
            session: 1,
            body: Body::BaseAbaDecided { instance: 0, value: true },
        };
        let (bytes, _) = env.seal(&kp, &Sizing::light(4)).unwrap();
        let mut tampered = bytes.to_vec();
        // Flip the decided value inside the body.
        let idx = tampered.len() - 65;
        tampered[idx] ^= 1;
        let (opened, sig_ok) = Envelope::open(&tampered, |_| Some(kp.public())).unwrap();
        assert!(!sig_ok);
        let _ = opened;
    }

    #[test]
    fn wrong_key_fails_signature() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let kp = keypair();
        let other = KeyPair::generate(EcdsaCurve::Secp160r1, &mut rng);
        let env = Envelope {
            src: 0,
            session: 1,
            body: Body::BaseAbaDecided { instance: 0, value: false },
        };
        let (bytes, _) = env.seal(&kp, &Sizing::light(4)).unwrap();
        let (_, sig_ok) = Envelope::open(&bytes, |_| Some(other.public())).unwrap();
        assert!(!sig_ok);
    }

    #[test]
    fn nominal_length_uses_paper_sizes() {
        // A batched ER packet for N=4: header 8 + roots (1 + 4×32) + five
        // 4-bit bitmaps (1 + 1 each) + kind byte + secp160r1 signature 40.
        let env = Envelope {
            src: 0,
            session: 0,
            body: Body::RbcEchoReady {
                roots: vec![Digest32::zero(); 4],
                echo: Bitmap::new(4),
                ready: Bitmap::new(4),
                echo_nack: Bitmap::new(4),
                ready_nack: Bitmap::new(4),
                init_nack: Bitmap::new(4),
            },
        };
        let nominal = env.nominal_len(&Sizing::light(4)).unwrap();
        assert_eq!(nominal, 8 + 1 + (1 + 128) + 5 * 2 + 40);
    }

    #[test]
    fn batched_er_packet_fits_a_lora_frame() {
        // The design requires one batched vote packet per channel access to
        // fit the 255-byte LoRa frame at N=4.
        let env = Envelope {
            src: 0,
            session: 0,
            body: Body::RbcEchoReady {
                roots: vec![Digest32::of(b"p"); 4],
                echo: Bitmap::full(4),
                ready: Bitmap::full(4),
                echo_nack: Bitmap::full(4),
                ready_nack: Bitmap::full(4),
                init_nack: Bitmap::full(4),
            },
        };
        assert!(env.nominal_len(&Sizing::light(4)).unwrap() <= 255);
    }

    #[test]
    fn truncated_envelope_errors() {
        assert_eq!(Envelope::open(&[0u8; 10], |_| None), Err(WireError::Truncated));
    }

    #[test]
    fn zero_key_epoch_tag_is_byte_identical_to_the_untagged_format() {
        let kp = keypair();
        for body in sample_bodies() {
            let env = Envelope { src: 1, session: 77, body };
            let (plain, nom_plain) = env.seal(&kp, &Sizing::light(4)).unwrap();
            let (tagged, nom_tagged) = env.seal_tagged(&kp, &Sizing::light(4), 0).unwrap();
            assert_eq!(plain, tagged);
            assert_eq!(nom_plain, nom_tagged);
        }
    }

    #[test]
    fn key_epoch_tag_roundtrips_and_is_signed() {
        let kp = keypair();
        for body in sample_bodies() {
            let env = Envelope { src: 2, session: 99, body };
            let (bytes, nominal) = env.seal_tagged(&kp, &Sizing::light(4), 5).unwrap();
            assert_eq!(nominal, env.nominal_len(&Sizing::light(4)).unwrap() + 8);
            let (opened, key_epoch, sig_ok) =
                Envelope::open_tagged(&bytes, |_| Some(kp.public())).unwrap();
            assert_eq!(opened, env);
            assert_eq!(key_epoch, 5);
            assert!(sig_ok, "{:?}", env.body);
            // The legacy entry point still parses tagged frames.
            let (opened, sig_ok) = Envelope::open(&bytes, |_| Some(kp.public())).unwrap();
            assert_eq!(opened, env);
            assert!(sig_ok);
            // Stripping or altering the tag breaks the signature.
            let mut stripped = bytes.to_vec();
            stripped.drain(bytes.len() - 72..bytes.len() - 64);
            if let Ok((_, tag, sig_ok)) = Envelope::open_tagged(&stripped, |_| Some(kp.public())) {
                assert!(!sig_ok || tag != 5);
            }
            let mut flipped = bytes.to_vec();
            let tag_at = bytes.len() - 65;
            flipped[tag_at] ^= 1;
            let (_, _, sig_ok) = Envelope::open_tagged(&flipped, |_| Some(kp.public())).unwrap();
            assert!(!sig_ok);
        }
    }

    #[test]
    fn untagged_frames_open_with_tag_zero() {
        let kp = keypair();
        let env = Envelope {
            src: 0,
            session: 3,
            body: Body::BaseAbaDecided { instance: 1, value: false },
        };
        let (bytes, _) = env.seal(&kp, &Sizing::light(4)).unwrap();
        let (opened, key_epoch, sig_ok) =
            Envelope::open_tagged(&bytes, |_| Some(kp.public())).unwrap();
        assert_eq!(opened, env);
        assert_eq!(key_epoch, 0);
        assert!(sig_ok);
    }

    #[test]
    fn oversized_fragment_data_errors_instead_of_panicking() {
        // 65535 bytes of fragment data seals; 65536 is an Oversize error.
        let kp = keypair();
        let at_limit = Envelope {
            src: 0,
            session: 0,
            body: Body::BaseRbcInit {
                instance: 0,
                frag: 0,
                frag_total: 1,
                root: Digest32::of(b"big"),
                data: Bytes::from(vec![7u8; u16::MAX as usize]),
            },
        };
        assert!(at_limit.seal(&kp, &Sizing::light(4)).is_ok());
        let over = Envelope {
            src: 0,
            session: 0,
            body: Body::BaseRbcInit {
                instance: 0,
                frag: 0,
                frag_total: 1,
                root: Digest32::of(b"big"),
                data: Bytes::from(vec![7u8; u16::MAX as usize + 1]),
            },
        };
        assert_eq!(
            over.seal(&kp, &Sizing::light(4)),
            Err(WireError::Oversize("byte string"))
        );
        assert_eq!(
            over.nominal_len(&Sizing::light(4)),
            Err(WireError::Oversize("byte string"))
        );
    }

    #[test]
    fn oversized_list_count_errors_instead_of_truncating() {
        // 256 echo shares would truncate to a 0 count prefix under the old
        // `len() as u8` encoding; now it is a hard error on both sinks.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (_, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
        let share = sks[0].sign_share(b"m");
        let body = Body::CbcEchoFinish {
            roots: vec![Digest32::zero(); 4],
            echo_shares: vec![(0, share); 256],
            finish_sigs: Vec::new(),
            echo_nack: Bitmap::new(4),
            finish_nack: Bitmap::new(4),
            init_nack: Bitmap::new(4),
        };
        let mut sink = ByteSink::new();
        assert_eq!(
            body.encode_into(&mut sink),
            Err(WireError::Oversize("list count"))
        );
        let mut count = CountSink::new(Sizing::light(4));
        assert_eq!(
            body.encode_into(&mut count),
            Err(WireError::Oversize("list count"))
        );
    }
}
