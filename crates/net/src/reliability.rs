//! NACK-driven reliability policy (paper §IV-B1).
//!
//! The paper chooses NACK over ACK because (1) quorum-driven consensus
//! advances on receiving enough votes, with no need for per-message sender
//! confirmation, and (2) a one-to-many broadcast under ACK would cost `N+1`
//! frames where NACK costs one. Concretely, every batched component
//! rebroadcasts its current combined packet on a jittered timer until the
//! component completes; peers whose packets carry set NACK bits trigger an
//! immediate (well, next-timer) refresh because the combined packet always
//! carries the node's full current state.

use wbft_wireless::SimDuration;
use rand::Rng;

/// Retransmission timing for a component's combined packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetransmitPolicy {
    /// Base interval between rebroadcasts while incomplete.
    pub interval: SimDuration,
    /// Uniform jitter added on top (desynchronizes periodic senders).
    pub jitter: SimDuration,
    /// Multiplier applied after each idle rebroadcast (gentle backoff so a
    /// stalled component doesn't saturate the channel); 16ths, i.e. 16 = 1.0.
    pub backoff_16ths: u16,
    /// Upper bound on the interval after backoff.
    pub max_interval: SimDuration,
}

impl RetransmitPolicy {
    /// Defaults matched to LoRa frame times: first retransmit after roughly
    /// two frame airtimes, backing off 1.5× to a 20 s cap.
    pub fn lora_class() -> Self {
        RetransmitPolicy {
            interval: SimDuration::from_millis(900),
            jitter: SimDuration::from_millis(400),
            backoff_16ths: 24, // 1.5×
            max_interval: SimDuration::from_secs(20),
        }
    }

    /// The delay before retransmission attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut impl Rng) -> SimDuration {
        let mut base = self.interval.as_micros() as f64;
        let factor = self.backoff_16ths as f64 / 16.0;
        for _ in 0..attempt.min(16) {
            base *= factor;
        }
        let base = (base as u64).min(self.max_interval.as_micros());
        let jitter = if self.jitter.as_micros() > 0 {
            rng.random_range(0..self.jitter.as_micros())
        } else {
            0
        };
        SimDuration::from_micros(base + jitter)
    }
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        Self::lora_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delays_grow_with_attempts() {
        let p = RetransmitPolicy::lora_class();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        let d0 = p.delay(0, &mut rng);
        let d5 = p.delay(5, &mut rng);
        assert!(d5 > d0, "{d0:?} vs {d5:?}");
    }

    #[test]
    fn delays_are_capped() {
        let p = RetransmitPolicy::lora_class();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2);
        let d = p.delay(100, &mut rng);
        assert!(d <= p.max_interval + p.jitter);
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let p = RetransmitPolicy {
            jitter: SimDuration::ZERO,
            ..RetransmitPolicy::lora_class()
        };
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
        assert_eq!(p.delay(2, &mut rng), p.delay(2, &mut rng));
    }
}
