//! Closed-form message-overhead-per-node expressions of Table I.
//!
//! The paper counts the exact number of messages ("message overhead", not
//! asymptotic complexity) one node sends in an N-component parallel
//! protocol, in three deployments: wired point-to-point, the wireless
//! broadcast baseline, and ConsensusBatcher. The benchmark
//! `table1_overhead` checks the *measured* channel accesses of the
//! implementation against these forms.

/// The five component rows of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Component {
    /// Reliable broadcast (Bracha).
    Rbc,
    /// Consistent broadcast.
    Cbc,
    /// Provable reliable broadcast.
    Prbc,
    /// Bracha's ABA (local coin) — one round.
    AbaLc,
    /// Cachin's ABA (shared coin) — one round.
    AbaSc,
}

impl Component {
    /// All rows, in Table I order.
    pub const ALL: [Component; 5] =
        [Component::Rbc, Component::Cbc, Component::Prbc, Component::AbaLc, Component::AbaSc];

    /// Row label as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Rbc => "RBC",
            Component::Cbc => "CBC",
            Component::Prbc => "PRBC",
            Component::AbaLc => "Bracha's ABA",
            Component::AbaSc => "Cachin's ABA",
        }
    }

    /// Messages per node, N parallel components, wired network
    /// (each broadcast = N−1 unicasts).
    pub fn wired(&self, n: u64) -> u64 {
        match self {
            Component::Rbc => (n - 1) * (1 + 2 * n),
            Component::Cbc => 3 * (n - 1),
            Component::Prbc => (n - 1) * (1 + 3 * n),
            Component::AbaLc => 3 * n * (n - 1) * (1 + 2 * n),
            Component::AbaSc => 3 * n * (n - 1),
        }
    }

    /// Messages per node, N parallel components, wireless broadcast
    /// baseline (each broadcast = one transmission, but still one per
    /// instance and phase).
    pub fn wireless_baseline(&self, n: u64) -> u64 {
        match self {
            Component::Rbc => 1 + 2 * n,
            Component::Cbc => 1 + (n - 1) + 1,
            Component::Prbc => 1 + 3 * n,
            Component::AbaLc => 3 * n * (1 + 2 * n),
            Component::AbaSc => 3 * n,
        }
    }

    /// Messages per node with ConsensusBatcher (batched across the N
    /// instances).
    pub fn consensus_batcher(&self, _n: u64) -> u64 {
        match self {
            Component::Rbc => 1 + 2,
            Component::Cbc => 1 + 1 + 1,
            Component::Prbc => 1 + 3,
            Component::AbaLc => 3 * (1 + 2),
            Component::AbaSc => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_at_n4() {
        // Spot-check the table at the paper's single-hop N = 4.
        assert_eq!(Component::Rbc.wired(4), 3 * 9);
        assert_eq!(Component::Rbc.wireless_baseline(4), 9);
        assert_eq!(Component::Rbc.consensus_batcher(4), 3);
        assert_eq!(Component::Cbc.wired(4), 9);
        assert_eq!(Component::Cbc.wireless_baseline(4), 5);
        assert_eq!(Component::Cbc.consensus_batcher(4), 3);
        assert_eq!(Component::Prbc.wired(4), 3 * 13);
        assert_eq!(Component::Prbc.wireless_baseline(4), 13);
        assert_eq!(Component::Prbc.consensus_batcher(4), 4);
        assert_eq!(Component::AbaLc.wired(4), 12 * 9 * 3);
        assert_eq!(Component::AbaLc.wireless_baseline(4), 12 * 9);
        assert_eq!(Component::AbaLc.consensus_batcher(4), 9);
        assert_eq!(Component::AbaSc.wired(4), 36);
        assert_eq!(Component::AbaSc.wireless_baseline(4), 12);
        assert_eq!(Component::AbaSc.consensus_batcher(4), 3);
    }

    #[test]
    fn batcher_is_constant_in_n() {
        for c in Component::ALL {
            assert_eq!(c.consensus_batcher(4), c.consensus_batcher(16), "{}", c.name());
        }
    }

    #[test]
    fn orderings_hold_for_all_n() {
        for n in [4u64, 7, 10, 16, 31] {
            for c in Component::ALL {
                assert!(c.wired(n) > c.wireless_baseline(n), "{} n={n}", c.name());
                assert!(
                    c.wireless_baseline(n) > c.consensus_batcher(n),
                    "{} n={n}",
                    c.name()
                );
            }
        }
    }
}
