#![forbid(unsafe_code)]
//! # wbft-bench — harness regenerating the paper's tables and figures
//!
//! Shared infrastructure for the five bench targets (`table1_overhead`,
//! `fig10_crypto`, `fig11_broadcast`, `fig12_aba`, `fig13_consensus`): a
//! component-level simulator driver that runs a single consensus component
//! across N wireless nodes and measures completion latency and channel
//! accesses, plus table-printing helpers.

use bytes::Bytes;
use wbft_components::aba_lc::AbaLcBatch;
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::baseline::{BaselineAbaSet, BaselineCbcSet, BaselinePrbcSet, BaselineRbcSet};
use wbft_components::cbc::{CbcBatch, CbcSmallBatch};
use wbft_components::prbc::PrbcBatch;
use wbft_components::rbc::RbcBatch;
use wbft_components::rbc_small::RbcSmallBatch;
use wbft_components::{
    deal_node_crypto, Actions, BinaryAgreement, Broadcaster, NodeCrypto, Params,
};
use wbft_crypto::CryptoSuite;
use wbft_net::{Bitmap, Body, CoinFlavor, Envelope, Sizing, Vote};
use wbft_wireless::{
    ChannelId, Frame, NodeBehavior, NodeCtx, SimConfig, SimDuration, SimTime, Simulator, Topology,
};

/// A consensus component under benchmark.
pub enum Comp {
    /// Batched Bracha RBC.
    Rbc(RbcBatch),
    /// Batched RBC-small.
    RbcSmall(RbcSmallBatch),
    /// Batched CBC.
    Cbc(CbcBatch),
    /// Batched CBC-small.
    CbcSmall(CbcSmallBatch),
    /// Batched PRBC.
    Prbc(PrbcBatch),
    /// Batched shared-coin ABA (SC or CP by flavor).
    AbaSc(AbaScBatch),
    /// Batched local-coin ABA.
    AbaLc(AbaLcBatch),
    /// Baseline RBC.
    BaseRbc(BaselineRbcSet),
    /// Baseline CBC.
    BaseCbc(BaselineCbcSet),
    /// Baseline PRBC.
    BasePrbc(BaselinePrbcSet),
    /// Baseline ABA.
    BaseAba(BaselineAbaSet),
}

/// What each node feeds its component at start.
#[derive(Clone, Debug)]
pub enum CompInput {
    /// A byte proposal (broadcast components); `None` = this node's
    /// instance stays idle (parallelism sweeps).
    Value(Option<Bytes>),
    /// ABA inputs for `parallelism` instances, all activated at once.
    AbaParallel {
        /// Instances activated.
        parallelism: usize,
        /// Input value for each activated instance.
        value: bool,
    },
    /// Serial ABA: instances activated one after the other by the driver.
    AbaSerial {
        /// How many instances run in sequence.
        count: usize,
        /// Input for each.
        value: bool,
    },
}

impl Comp {
    fn start(&mut self, input: &CompInput, acts: &mut Actions) {
        match (self, input) {
            (Comp::Rbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::Cbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::Prbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::BaseRbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::BaseCbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::BasePrbc(c), CompInput::Value(Some(v))) => c.start(v.clone(), acts),
            (Comp::RbcSmall(c), CompInput::Value(Some(_))) => c.start(Vote::One, acts),
            (Comp::CbcSmall(c), CompInput::Value(Some(_))) => {
                c.start(Bitmap::from_raw(0b0111, 4), acts)
            }
            (Comp::AbaSc(c), CompInput::AbaParallel { parallelism, value }) => {
                for j in 0..*parallelism {
                    c.set_input(j, *value, acts);
                }
            }
            (Comp::AbaLc(c), CompInput::AbaParallel { parallelism, value }) => {
                for j in 0..*parallelism {
                    c.set_input(j, *value, acts);
                }
            }
            (Comp::BaseAba(c), CompInput::AbaParallel { parallelism, value }) => {
                for j in 0..*parallelism {
                    c.set_input(j, *value, acts);
                }
            }
            (Comp::AbaSc(c), CompInput::AbaSerial { value, .. }) => c.set_input(0, *value, acts),
            (Comp::AbaLc(c), CompInput::AbaSerial { value, .. }) => c.set_input(0, *value, acts),
            (Comp::BaseAba(c), CompInput::AbaSerial { value, .. }) => {
                c.set_input(0, *value, acts)
            }
            _ => {}
        }
    }

    fn handle(&mut self, from: usize, body: &Body, acts: &mut Actions) {
        match self {
            Comp::Rbc(c) => c.handle(from, body, acts),
            Comp::RbcSmall(c) => c.handle(from, body, acts),
            Comp::Cbc(c) => c.handle(from, body, acts),
            Comp::CbcSmall(c) => c.handle(from, body, acts),
            Comp::Prbc(c) => c.handle(from, body, acts),
            Comp::AbaSc(c) => c.handle(from, body, acts),
            Comp::AbaLc(c) => c.handle(from, body, acts),
            Comp::BaseRbc(c) => c.handle(from, body, acts),
            Comp::BaseCbc(c) => c.handle(from, body, acts),
            Comp::BasePrbc(c) => c.handle(from, body, acts),
            Comp::BaseAba(c) => c.handle(from, body, acts),
        }
    }

    fn on_timer(&mut self, local: u32, acts: &mut Actions) {
        match self {
            Comp::Rbc(c) => c.on_timer(local, acts),
            Comp::RbcSmall(c) => c.on_timer(local, acts),
            Comp::Cbc(c) => c.on_timer(local, acts),
            Comp::CbcSmall(c) => c.on_timer(local, acts),
            Comp::Prbc(c) => c.on_timer(local, acts),
            Comp::AbaSc(c) => c.on_timer(local, acts),
            Comp::AbaLc(c) => c.on_timer(local, acts),
            Comp::BaseRbc(c) => c.on_timer(local, acts),
            Comp::BaseCbc(c) => c.on_timer(local, acts),
            Comp::BasePrbc(c) => c.on_timer(local, acts),
            Comp::BaseAba(c) => c.on_timer(local, acts),
        }
    }

    /// Serial-ABA driver hook: activate the next instance when the current
    /// one decides.
    fn poll_serial(&mut self, input: &CompInput, acts: &mut Actions) {
        let CompInput::AbaSerial { count, value } = input else { return };
        match self {
            Comp::AbaSc(c) => {
                for j in 0..*count {
                    if c.decided(j).is_some() && j + 1 < *count && !c.is_active(j + 1) {
                        c.set_input(j + 1, *value, acts);
                    }
                }
            }
            Comp::AbaLc(c) => {
                for j in 0..*count {
                    if c.decided(j).is_some() && j + 1 < *count {
                        c.set_input(j + 1, *value, acts); // idempotent
                    }
                }
            }
            Comp::BaseAba(c) => {
                for j in 0..*count {
                    if c.decided(j).is_some() && j + 1 < *count {
                        c.set_input(j + 1, *value, acts);
                    }
                }
            }
            _ => {}
        }
    }

    /// Has this node completed the experiment's ABA target?
    fn aba_complete(&self, input: &CompInput) -> bool {
        let target = match input {
            CompInput::AbaParallel { parallelism, .. } => *parallelism,
            CompInput::AbaSerial { count, .. } => *count,
            CompInput::Value(_) => return false,
        };
        match self {
            Comp::AbaSc(c) => (0..target).all(|j| c.decided(j).is_some()),
            Comp::AbaLc(c) => (0..target).all(|j| c.decided(j).is_some()),
            Comp::BaseAba(c) => (0..target).all(|j| c.decided(j).is_some()),
            _ => false,
        }
    }

    fn delivered_at_least(&self, target: usize) -> bool {
        match self {
            Comp::Rbc(c) => c.delivered_count() >= target,
            Comp::RbcSmall(c) => c.delivered_count() >= target,
            Comp::Cbc(c) => c.delivered_count() >= target,
            Comp::CbcSmall(c) => c.delivered_count() >= target,
            Comp::Prbc(c) => c.delivered_count() >= target && c.proven_count() >= target,
            Comp::BaseRbc(c) => c.delivered_count() >= target,
            Comp::BaseCbc(c) => c.delivered_count() >= target,
            Comp::BasePrbc(c) => c.delivered_count() >= target && c.proven_count() >= target,
            _ => false,
        }
    }
}

/// Simulator behavior hosting one component per node.
pub struct CompNode {
    comp: Comp,
    input: CompInput,
    target_instances: usize,
    crypto: NodeCrypto,
    sizing: Sizing,
    session: u64,
    /// Completion time at this node.
    pub completed_at: Option<SimTime>,
}

impl CompNode {
    fn is_complete(&self) -> bool {
        match &self.input {
            CompInput::Value(_) => self.comp.delivered_at_least(self.target_instances),
            other => self.comp.aba_complete(other),
        }
    }

    fn apply(&mut self, acts: &mut Actions, ctx: &mut NodeCtx) {
        let (sends, timers, charge) = acts.drain();
        if charge > 0 {
            ctx.charge_cpu(SimDuration::from_micros(charge));
        }
        let sign_cost = self.crypto.suite.ecdsa.profile().sign_us;
        for body in sends {
            let env = Envelope { src: self.crypto.me as u16, session: self.session, body };
            ctx.charge_cpu(SimDuration::from_micros(sign_cost));
            let (bytes, nominal) =
                env.seal(&self.crypto.keypair, &self.sizing).expect("bench bodies encode");
            let slot = self
                .session
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(env.body.slot_key());
            ctx.broadcast_slot(ChannelId(0), bytes, nominal, slot);
        }
        for (delay, local) in timers {
            ctx.set_timer(delay, local as u64);
        }
        if self.completed_at.is_none() && self.is_complete() {
            self.completed_at = Some(ctx.now());
        }
    }
}

impl NodeBehavior for CompNode {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        let mut acts = Actions::new();
        let input = self.input.clone();
        self.comp.start(&input, &mut acts);
        self.apply(&mut acts, ctx);
    }

    fn on_frame(&mut self, frame: &Frame, ctx: &mut NodeCtx) {
        ctx.charge_cpu(SimDuration::from_micros(self.crypto.suite.ecdsa.profile().verify_us));
        let keys = &self.crypto.peer_keys;
        let Ok((env, sig_ok)) =
            Envelope::open(&frame.payload, |src| keys.get(src as usize).copied())
        else {
            return;
        };
        if !sig_ok || env.session != self.session {
            return;
        }
        let mut acts = Actions::new();
        self.comp.handle(env.src as usize, &env.body, &mut acts);
        let input = self.input.clone();
        self.comp.poll_serial(&input, &mut acts);
        self.apply(&mut acts, ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut NodeCtx) {
        let mut acts = Actions::new();
        self.comp.on_timer(id as u32, &mut acts);
        let input = self.input.clone();
        self.comp.poll_serial(&input, &mut acts);
        self.apply(&mut acts, ctx);
    }
}

/// Result of one component experiment.
#[derive(Clone, Copy, Debug)]
pub struct CompResult {
    /// Time until the slowest node completed.
    pub latency: SimDuration,
    /// Mean channel accesses per node at completion.
    pub accesses_per_node: f64,
    /// Whether all nodes completed before the deadline.
    pub completed: bool,
}

/// Runs one component experiment on an N-node single-hop LoRa network.
///
/// `make` builds each node's component from `(node id, crypto, params)`;
/// `inputs` supplies each node's start input; `target_instances` is the
/// number of instances every node must deliver for completion (broadcast
/// components).
pub fn run_component(
    n: usize,
    seed: u64,
    make: impl Fn(usize, &NodeCrypto, Params) -> Comp,
    inputs: impl Fn(usize) -> CompInput,
    target_instances: usize,
) -> CompResult {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbe9c);
    let crypto = deal_node_crypto(n, CryptoSuite::light(), &mut rng);
    let session = 1u64;
    let behaviors: Vec<CompNode> = crypto
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let params = Params::new(n, i, session);
            CompNode {
                comp: make(i, &c, params),
                input: inputs(i),
                target_instances,
                sizing: Sizing { n, suite: c.suite },
                session,
                crypto: c,
                completed_at: None,
            }
        })
        .collect();
    let cfg = SimConfig { seed, ..SimConfig::default() };
    let mut sim = Simulator::new(cfg, Topology::single_hop(n), behaviors);
    let deadline = SimTime::from_micros(1_800_000_000);
    let completed =
        sim.run_until_pred(deadline, |s| s.behaviors().all(|(_, b)| b.completed_at.is_some()));
    let latency = sim
        .behaviors()
        .filter_map(|(_, b)| b.completed_at)
        .max()
        .unwrap_or(deadline)
        .saturating_since(SimTime::ZERO);
    CompResult {
        latency,
        accesses_per_node: sim.metrics().mean_channel_accesses(),
        completed,
    }
}

/// Reports directory for one figure: `target/reports/<name>/`, created.
pub fn report_dir(name: &str) -> std::path::PathBuf {
    let dir = wbft_consensus::report::report_root().join(name);
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    dir
}

/// Writes a JSON document in the canonical file encoding
/// ([`wbft_report::write_file`]); panics with the path on failure, which is
/// the right behaviour for a bench binary.
pub fn write_json(path: &std::path::Path, json: &wbft_report::Json) {
    wbft_report::write_file(path, json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Reads a JSON document back; panics with the path on failure.
pub fn read_json(path: &std::path::Path) -> wbft_report::Json {
    wbft_report::read_file(path).unwrap_or_else(|e| panic!("cannot read report: {e}"))
}

impl wbft_report::ToJson for CompResult {
    fn to_json(&self) -> wbft_report::Json {
        use wbft_report::Json;
        Json::obj([
            ("latency_us", Json::u64(self.latency.as_micros())),
            ("accesses_per_node", Json::f64(self.accesses_per_node)),
            ("completed", Json::Bool(self.completed)),
        ])
    }
}

/// Formats a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a banner for one figure/table reproduction.
pub fn banner(title: &str, note: &str) {
    println!("\n================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("================================================================");
}

/// Convenience: a value proposal of roughly `packets` LoRa frames.
pub fn proposal_of_packets(packets: usize, node: usize) -> Bytes {
    let len = packets * wbft_components::rbc::FRAG_BUDGET - 10;
    Bytes::from(vec![0xA0 | node as u8; len.max(8)])
}

/// Parallel shared-coin ABA component.
pub fn aba_sc_comp(c: &NodeCrypto, p: Params, flavor: CoinFlavor) -> Comp {
    Comp::AbaSc(AbaScBatch::new_parallel(p, flavor, c.coin_pub.clone(), c.coin_sec.clone()))
}

/// Serial shared-coin ABA component.
pub fn aba_sc_serial_comp(c: &NodeCrypto, p: Params, flavor: CoinFlavor) -> Comp {
    Comp::AbaSc(AbaScBatch::new_serial(p, flavor, c.coin_pub.clone(), c.coin_sec.clone()))
}
