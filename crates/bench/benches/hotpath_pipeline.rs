//! Epoch-pipelining bench — latency vs load, pipelined against sequential.
//!
//! Runs the same open-loop client arrival schedule through the sweep
//! harness at pipeline depths W ∈ {1, 2, 4} and compares per-transaction
//! commit latency in *simulated* time (deterministic, so the comparison is
//! stable across machines and CI runs). With arrivals faster than the
//! epoch cadence, the sequential engine (W = 1) queues submissions behind
//! one epoch at a time while a pipelined engine overlaps the next epochs'
//! dissemination with the current agreement — the bench asserts the
//! headline claim: at matched arrival rates, some W ≥ 2 beats W = 1 on
//! mean commit latency for at least one protocol.
//!
//! Also times wall-clock µs/run per grid point and writes the JSON
//! baseline to `target/reports/hotpath/` so CI tracks both the simulated
//! latency win and the event-loop cost of the pipelined paths across PRs.

use std::time::Instant;
use wbft_bench::{banner, report_dir, row, write_json};
use wbft_consensus::report::scenario_string;
use wbft_consensus::sweep::{run_sweep, SweepSpec};
use wbft_consensus::testbed::run;
use wbft_consensus::{ArrivalSpec, Protocol, ServiceConfig};
use wbft_report::Json;

/// Mean microseconds per call over `reps` calls (one warmup call first).
fn time_us<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let reps: u32 = std::env::var("WBFT_HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    banner(
        "Hotpath pipeline — commit latency vs pipeline depth at matched load",
        "open-loop arrivals faster than the epoch cadence; latency is simulated time",
    );

    // One latency-vs-load grid: three protocols × depths, with the same
    // saturating arrival schedule everywhere (the matched-load
    // comparison). Arrivals land faster than any epoch can drain them, so
    // a backlog exists from the start — the regime pipelining is for.
    let mut spec = SweepSpec::new("hotpath-pipeline");
    spec.protocols = vec![Protocol::HoneyBadgerSc, Protocol::DumboSc, Protocol::Beat];
    spec.pipeline_depths = vec![1, 2, 4];
    spec.seeds = vec![7];
    spec.batch_size = 4;
    spec.services = vec![Some(ServiceConfig {
        arrivals: ArrivalSpec { per_node: 24, interval_us: 1_000, tx_bytes: 32, seed: 13 },
        mempool_capacity: 128,
        max_epochs: 64,
    })];
    let runs = run_sweep(&spec, 1);

    let widths = [52usize, 6, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "W".into(),
                "mean (ms)".into(),
                "p99 (ms)".into(),
                "us/run".into(),
                "txs".into(),
            ],
            &widths
        )
    );

    // mean commit latency (µs, simulated) per (protocol, depth).
    let mut mean_us = std::collections::BTreeMap::new();
    let mut rows = Vec::new();
    for sweep_run in &runs {
        let scenario = &sweep_run.scenario;
        let cfg = &scenario.cfg;
        assert!(sweep_run.report.completed, "{}: run must drain", scenario.label);
        // Determinism bar: a repeated run must reproduce the exact report.
        let text = scenario_string(&scenario.label, cfg, &sweep_run.report);
        let again = scenario_string(&scenario.label, cfg, &run(cfg));
        assert_eq!(text, again, "{}: repeated runs must be byte-identical", scenario.label);
        let service = sweep_run.report.service.as_ref().expect("service member present");
        assert_eq!(
            service.committed_client_txs, service.admitted,
            "{}: every admitted tx must commit",
            scenario.label
        );
        let wall_us = time_us(reps, || run(cfg));
        mean_us.insert((cfg.protocol.slug(), cfg.pipeline_depth), service.latency.mean_us);
        println!(
            "{}",
            row(
                &[
                    scenario.label.clone(),
                    cfg.pipeline_depth.to_string(),
                    format!("{:.1}", service.latency.mean_us / 1e3),
                    format!("{:.1}", service.latency.p99_us as f64 / 1e3),
                    format!("{wall_us:.0}"),
                    sweep_run.report.total_txs.to_string(),
                ],
                &widths
            )
        );
        rows.push(Json::obj([
            ("scenario", Json::str(scenario.label.clone())),
            ("protocol", Json::str(cfg.protocol.slug())),
            ("pipeline_depth", Json::u64(cfg.pipeline_depth)),
            ("mean_latency_us", Json::f64(service.latency.mean_us)),
            ("p50_latency_us", Json::u64(service.latency.p50_us)),
            ("p99_latency_us", Json::u64(service.latency.p99_us)),
            ("committed_txs", Json::u64(service.committed_client_txs)),
            ("us_per_run", Json::f64(wall_us)),
        ]));
    }

    // The headline claim: at matched arrival rates, some pipelined depth
    // beats the sequential engine's mean commit latency on at least one
    // protocol. (Deterministic simulated time, so this is a stable gate,
    // not a flaky wall-clock one.)
    let mut winners = Vec::new();
    for &protocol in &spec.protocols {
        let sequential = mean_us[&(protocol.slug(), 1)];
        let best_pipelined = spec
            .pipeline_depths
            .iter()
            .filter(|&&d| d > 1)
            .map(|&d| mean_us[&(protocol.slug(), d)])
            .fold(f64::INFINITY, f64::min);
        println!(
            "{}: sequential {:.1} ms vs best pipelined {:.1} ms ({:+.1}%)",
            protocol.slug(),
            sequential / 1e3,
            best_pipelined / 1e3,
            (best_pipelined - sequential) / sequential * 100.0,
        );
        if best_pipelined < sequential {
            winners.push(protocol);
        }
    }
    assert!(
        !winners.is_empty(),
        "no protocol improved mean commit latency at any pipelined depth"
    );

    let report = Json::obj([
        ("kind", Json::str("hotpath-pipeline")),
        ("reps", Json::u64(reps as u64)),
        ("runs", Json::arr(rows)),
    ]);
    let path = report_dir("hotpath").join("hotpath_pipeline.json");
    write_json(&path, &report);
    println!("\nreport: {}", path.display());
    println!(
        "[hotpath_pipeline] OK (deterministic; pipelining wins on {})",
        winners.iter().map(|p| p.slug()).collect::<Vec<_>>().join(", ")
    );
}
