//! Table I — message overhead per node in an N-component parallel protocol.
//!
//! Prints the paper's closed forms (wired / wireless baseline /
//! ConsensusBatcher) and then *measures* channel accesses per node in the
//! simulator for the components we can run end-to-end, checking that the
//! batched deployment's measured accesses sit far below the baseline's.
//! The four measurement runs fan across worker threads; closed forms and
//! measurements are written to `target/reports/table1/table1.json`.

use wbft_bench::{banner, read_json, report_dir, row, run_component, write_json, Comp, CompInput};
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::baseline::{BaselineAbaSet, BaselineRbcSet};
use wbft_components::rbc::RbcBatch;
use wbft_consensus::sweep::{parallel_map, sweep_threads};
use wbft_net::overhead::Component;
use wbft_net::CoinFlavor;
use wbft_report::{Json, ToJson};

/// The four end-to-end measurement runs, identified by label.
const RUNS: [&str; 4] = ["rbc-batched", "rbc-baseline", "aba-batched", "aba-baseline"];

fn run_labelled(label: &str) -> wbft_bench::CompResult {
    let value = |i: usize| CompInput::Value(Some(wbft_bench::proposal_of_packets(1, i)));
    let aba_in = |_: usize| CompInput::AbaParallel { parallelism: 4, value: true };
    match label {
        "rbc-batched" => run_component(4, 11, |_, _, p| Comp::Rbc(RbcBatch::new(p)), value, 4),
        "rbc-baseline" => {
            run_component(4, 11, |_, _, p| Comp::BaseRbc(BaselineRbcSet::new(p)), value, 4)
        }
        "aba-batched" => run_component(
            4,
            13,
            |_, c, p| {
                Comp::AbaSc(AbaScBatch::new_parallel(
                    p,
                    CoinFlavor::ThreshSig,
                    c.coin_pub.clone(),
                    c.coin_sec.clone(),
                ))
            },
            aba_in,
            4,
        ),
        "aba-baseline" => run_component(
            4,
            13,
            |_, c, p| {
                Comp::BaseAba(BaselineAbaSet::new(
                    p,
                    CoinFlavor::ThreshSig,
                    c.coin_pub.clone(),
                    c.coin_sec.clone(),
                ))
            },
            aba_in,
            4,
        ),
        _ => unreachable!(),
    }
}

fn main() {
    banner(
        "Table I — message overhead per node (N-component parallel)",
        "closed forms at N = 4, then measured channel accesses (lossless run)",
    );
    let widths = [14usize, 10, 18, 18];
    println!(
        "{}",
        row(
            &[
                "component".into(),
                "wired".into(),
                "wireless-baseline".into(),
                "ConsensusBatcher".into()
            ],
            &widths
        )
    );
    let mut closed_forms = Vec::new();
    for c in Component::ALL {
        println!(
            "{}",
            row(
                &[
                    c.name().into(),
                    c.wired(4).to_string(),
                    c.wireless_baseline(4).to_string(),
                    c.consensus_batcher(4).to_string(),
                ],
                &widths
            )
        );
        closed_forms.push(Json::obj([
            ("component", Json::str(c.name())),
            ("wired", Json::u64(c.wired(4))),
            ("wireless_baseline", Json::u64(c.wireless_baseline(4))),
            ("consensus_batcher", Json::u64(c.consensus_batcher(4))),
        ]));
    }

    // The four simulator runs, fanned across worker threads.
    let results = parallel_map(&RUNS, sweep_threads(), |_, label| run_labelled(label));
    let measured: Vec<Json> = RUNS
        .iter()
        .zip(&results)
        .map(|(label, r)| {
            let mut obj = vec![("run".to_string(), Json::str(*label))];
            if let Json::Obj(members) = r.to_json() {
                obj.extend(members);
            }
            Json::Obj(obj)
        })
        .collect();
    let file = report_dir("table1").join("table1.json");
    write_json(
        &file,
        &Json::obj([
            ("closed_forms_n4", Json::arr(closed_forms)),
            ("measured", Json::arr(measured)),
        ]),
    );

    // Render the measured table from the decoded report file.
    let decoded = read_json(&file);
    let get = |label: &str| -> (f64, bool) {
        let rec = decoded
            .get("measured")
            .and_then(Json::as_arr)
            .expect("measured array")
            .iter()
            .find(|r| r.get("run").and_then(Json::as_str) == Some(label))
            .unwrap_or_else(|| panic!("missing run {label}"));
        (
            rec.get("accesses_per_node").and_then(Json::as_f64).expect("accesses"),
            rec.get("completed").and_then(Json::as_bool).expect("completed"),
        )
    };
    println!("\nMeasured channel accesses per node (N = 4, includes NACK retransmissions):");
    let widths = [14usize, 20, 18, 8];
    println!(
        "{}",
        row(
            &[
                "component".into(),
                "baseline measured".into(),
                "batched measured".into(),
                "ratio".into()
            ],
            &widths
        )
    );
    for (name, baseline, batched) in
        [("RBC", "rbc-baseline", "rbc-batched"), ("Cachin's ABA", "aba-baseline", "aba-batched")]
    {
        let (base_acc, base_done) = get(baseline);
        let (batch_acc, batch_done) = get(batched);
        assert!(base_done && batch_done, "{name} runs must complete");
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{base_acc:.1}"),
                    format!("{batch_acc:.1}"),
                    format!("{:.1}x", base_acc / batch_acc),
                ],
                &widths
            )
        );
        assert!(
            base_acc > batch_acc,
            "{name} batching must reduce channel accesses"
        );
    }

    println!("\npaper's claim: batching reduces per-node overhead of N parallel components");
    println!("from O(N)-O(N^3) to O(1); the measured ratios above demonstrate the gap.");
    println!("\n[table1_overhead] OK");
}
