//! Table I — message overhead per node in an N-component parallel protocol.
//!
//! Prints the paper's closed forms (wired / wireless baseline /
//! ConsensusBatcher) and then *measures* channel accesses per node in the
//! simulator for the components we can run end-to-end, checking that the
//! batched deployment's measured accesses sit far below the baseline's.

use wbft_bench::{banner, row, run_component, Comp, CompInput};
use wbft_components::aba_sc::AbaScBatch;
use wbft_components::baseline::{BaselineAbaSet, BaselineRbcSet};
use wbft_components::rbc::RbcBatch;
use wbft_net::overhead::Component;
use wbft_net::CoinFlavor;

fn main() {
    banner(
        "Table I — message overhead per node (N-component parallel)",
        "closed forms at N = 4, then measured channel accesses (lossless run)",
    );
    let widths = [14usize, 10, 18, 18];
    println!(
        "{}",
        row(
            &[
                "component".into(),
                "wired".into(),
                "wireless-baseline".into(),
                "ConsensusBatcher".into()
            ],
            &widths
        )
    );
    for c in Component::ALL {
        println!(
            "{}",
            row(
                &[
                    c.name().into(),
                    c.wired(4).to_string(),
                    c.wireless_baseline(4).to_string(),
                    c.consensus_batcher(4).to_string(),
                ],
                &widths
            )
        );
    }

    println!("\nMeasured channel accesses per node (N = 4, includes NACK retransmissions):");
    let widths = [14usize, 20, 18, 8];
    println!(
        "{}",
        row(
            &[
                "component".into(),
                "baseline measured".into(),
                "batched measured".into(),
                "ratio".into()
            ],
            &widths
        )
    );

    // RBC: batched vs baseline, all four instances proposing.
    let value = |i: usize| CompInput::Value(Some(wbft_bench::proposal_of_packets(1, i)));
    let batched_rbc = run_component(4, 11, |_, _, p| Comp::Rbc(RbcBatch::new(p)), value, 4);
    let baseline_rbc =
        run_component(4, 11, |_, _, p| Comp::BaseRbc(BaselineRbcSet::new(p)), value, 4);
    print_measured("RBC", baseline_rbc, batched_rbc, &widths);

    // ABA (shared coin): batched (shared round coin) vs baseline.
    let aba_in = |_: usize| CompInput::AbaParallel { parallelism: 4, value: true };
    let batched_aba = run_component(
        4,
        13,
        |_, c, p| {
            Comp::AbaSc(AbaScBatch::new_parallel(
                p,
                CoinFlavor::ThreshSig,
                c.coin_pub.clone(),
                c.coin_sec.clone(),
            ))
        },
        aba_in,
        4,
    );
    let baseline_aba = run_component(
        4,
        13,
        |_, c, p| {
            Comp::BaseAba(BaselineAbaSet::new(
                p,
                CoinFlavor::ThreshSig,
                c.coin_pub.clone(),
                c.coin_sec.clone(),
            ))
        },
        aba_in,
        4,
    );
    print_measured("Cachin's ABA", baseline_aba, batched_aba, &widths);

    println!("\npaper's claim: batching reduces per-node overhead of N parallel components");
    println!("from O(N)-O(N^3) to O(1); the measured ratios above demonstrate the gap.");
    assert!(batched_rbc.completed && baseline_rbc.completed);
    assert!(batched_aba.completed && baseline_aba.completed);
    assert!(
        baseline_rbc.accesses_per_node > batched_rbc.accesses_per_node,
        "RBC batching must reduce channel accesses"
    );
    assert!(
        baseline_aba.accesses_per_node > batched_aba.accesses_per_node,
        "ABA batching must reduce channel accesses"
    );
    println!("\n[table1_overhead] OK");
}

fn print_measured(
    name: &str,
    baseline: wbft_bench::CompResult,
    batched: wbft_bench::CompResult,
    widths: &[usize],
) {
    println!(
        "{}",
        row(
            &[
                name.into(),
                format!("{:.1}", baseline.accesses_per_node),
                format!("{:.1}", batched.accesses_per_node),
                format!("{:.1}x", baseline.accesses_per_node / batched.accesses_per_node),
            ],
            widths
        )
    );
}
