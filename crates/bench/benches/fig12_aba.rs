//! Fig. 12 — ABA latency vs number of parallel instances (a) and serial
//! instances (b), on a 4-node single-hop LoRa network.
//!
//! The measurement grids fan across worker threads with `parallel_map` and
//! land in `target/reports/fig12/fig12{a,b}.json`; tables render from the
//! decoded files.
//!
//! Expected shapes (paper): with growing parallelism the ABA-LC/ABA-SC gap
//! shrinks (ABA-LC's extra messages batch away while ABA-SC keeps paying
//! threshold crypto per round); ABA-CP sits below ABA-SC (cheaper coin);
//! serially, ABA-SC stays below ABA-LC.

use std::path::Path;
use wbft_bench::{
    aba_sc_comp, aba_sc_serial_comp, banner, read_json, report_dir, row, run_component,
    write_json, Comp, CompInput,
};
use wbft_components::aba_lc::AbaLcBatch;
use wbft_consensus::sweep::{parallel_map, sweep_threads};
use wbft_net::CoinFlavor;
use wbft_report::Json;

/// One grid point: an ABA deployment at one instance count.
#[derive(Clone, Copy)]
struct Point {
    which: &'static str,
    count: usize,
    serial: bool,
    seed: u64,
}

/// Averaged over five seeds: shared-coin rounds are coin-luck dependent.
fn measure(pt: &Point) -> f64 {
    (0..5).map(|k| measure_once(pt, pt.seed + 100 * k)).sum::<f64>() / 5.0
}

fn measure_once(pt: &Point, seed: u64) -> f64 {
    let (count, serial) = (pt.count, pt.serial);
    let inputs = move |_: usize| {
        if serial {
            CompInput::AbaSerial { count, value: true }
        } else {
            CompInput::AbaParallel { parallelism: count, value: true }
        }
    };
    let result = match (pt.which, serial) {
        ("ABA-LC", _) => run_component(4, seed, |_, _, p| Comp::AbaLc(AbaLcBatch::new(p)), inputs, 0),
        ("ABA-SC", false) => run_component(
            4,
            seed,
            |_, c, p| aba_sc_comp(c, p, CoinFlavor::ThreshSig),
            inputs,
            0,
        ),
        ("ABA-SC", true) => run_component(
            4,
            seed,
            |_, c, p| aba_sc_serial_comp(c, p, CoinFlavor::ThreshSig),
            inputs,
            0,
        ),
        ("ABA-CP", false) => run_component(
            4,
            seed,
            |_, c, p| aba_sc_comp(c, p, CoinFlavor::CoinFlip),
            inputs,
            0,
        ),
        _ => unreachable!(),
    };
    assert!(result.completed, "{} count={count} did not complete", pt.which);
    result.latency.as_secs_f64()
}

/// Runs a grid in parallel, writes its JSON file, and returns the decoded
/// per-deployment latency curves in `deployments` order.
fn sweep_grid(points: &[Point], file: &Path, deployments: &[&str]) -> Vec<(String, Vec<f64>)> {
    let latencies = parallel_map(points, sweep_threads(), |_, pt| measure(pt));
    let records: Vec<Json> = points
        .iter()
        .zip(&latencies)
        .map(|(pt, lat)| {
            Json::obj([
                ("aba", Json::str(pt.which)),
                ("count", Json::u64(pt.count as u64)),
                ("serial", Json::Bool(pt.serial)),
                ("latency_s", Json::f64(*lat)),
            ])
        })
        .collect();
    write_json(file, &Json::obj([("points", Json::arr(records))]));

    let decoded = read_json(file);
    let rows = decoded.get("points").and_then(Json::as_arr).expect("points");
    deployments
        .iter()
        .map(|&which| {
            let lats: Vec<f64> = (1..=4)
                .map(|count| {
                    rows.iter()
                        .find(|r| {
                            r.get("aba").and_then(Json::as_str) == Some(which)
                                && r.get("count").and_then(Json::as_u64) == Some(count)
                        })
                        .and_then(|r| r.get("latency_s").and_then(Json::as_f64))
                        .unwrap_or_else(|| panic!("missing point {which}/{count}"))
                })
                .collect();
            (which.to_string(), lats)
        })
        .collect()
}

fn print_curves(table: &[(String, Vec<f64>)], x_label: &str) {
    let widths = [8usize, 8, 8, 8, 8];
    let mut header = vec!["ABA".to_string()];
    header.extend((1..=4).map(|x| format!("{x_label}{x}")));
    println!("{}", row(&header, &widths));
    for (which, lats) in table {
        let mut cells = vec![which.clone()];
        cells.extend(lats.iter().map(|lat| format!("{lat:.1}")));
        println!("{}", row(&cells, &widths));
    }
}

fn main() {
    let dir = report_dir("fig12");
    fig12a(&dir);
    fig12b(&dir);
    println!("\n[fig12_aba] OK");
}

fn fig12a(dir: &Path) {
    banner(
        "Fig. 12a — ABA latency (s) vs number of parallel instances",
        "4 nodes; unanimous inputs; ABA-LC = Bracha, ABA-SC = Cachin, ABA-CP = BEAT coin",
    );
    let deployments = ["ABA-LC", "ABA-SC", "ABA-CP"];
    let points: Vec<Point> = deployments
        .iter()
        .flat_map(|&which| {
            (1..=4).map(move |count| Point { which, count, serial: false, seed: 41 + count as u64 })
        })
        .collect();
    let table = sweep_grid(&points, &dir.join("fig12a.json"), &deployments);
    print_curves(&table, "p=");
    let get = |name: &str, idx: usize| table.iter().find(|(w, _)| w == name).unwrap().1[idx];
    // Shapes: CP below SC everywhere (cheaper coin ops).
    for p in 0..4 {
        assert!(
            get("ABA-CP", p) <= get("ABA-SC", p) * 1.15,
            "ABA-CP should not exceed ABA-SC materially at p={}",
            p + 1
        );
    }
    // The LC/SC *ratio* moves with parallelism; report it (the paper's
    // crossing depends on absolute crypto costs, ours on the same profiles).
    let ratio1 = get("ABA-LC", 0) / get("ABA-SC", 0);
    let ratio4 = get("ABA-LC", 3) / get("ABA-SC", 3);
    println!(
        "LC/SC latency ratio: {:.2} at p=1 -> {:.2} at p=4 (paper: LC catches up / wins by p=4)",
        ratio1, ratio4
    );
}

fn fig12b(dir: &Path) {
    banner(
        "Fig. 12b — ABA latency (s) vs number of serial instances",
        "4 nodes; instances activated one after another (Dumbo's pattern)",
    );
    let deployments = ["ABA-SC", "ABA-LC"];
    let points: Vec<Point> = deployments
        .iter()
        .flat_map(|&which| {
            (1..=4).map(move |count| Point { which, count, serial: true, seed: 51 + count as u64 })
        })
        .collect();
    let table = sweep_grid(&points, &dir.join("fig12b.json"), &deployments);
    print_curves(&table, "s=");
    let sc = &table[0].1;
    let lc = &table[1].1;
    assert!(sc[3] > sc[0], "serial latency must grow with instance count");
    println!(
        "at s=4: ABA-SC {:.1}s vs ABA-LC {:.1}s (paper: serial ABA-SC below ABA-LC)",
        sc[3], lc[3]
    );
}
