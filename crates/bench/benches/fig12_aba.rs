//! Fig. 12 — ABA latency vs number of parallel instances (a) and serial
//! instances (b), on a 4-node single-hop LoRa network.
//!
//! Expected shapes (paper): with growing parallelism the ABA-LC/ABA-SC gap
//! shrinks (ABA-LC's extra messages batch away while ABA-SC keeps paying
//! threshold crypto per round); ABA-CP sits below ABA-SC (cheaper coin);
//! serially, ABA-SC stays below ABA-LC.

use wbft_bench::{aba_sc_comp, aba_sc_serial_comp, banner, row, run_component, Comp, CompInput};
use wbft_components::aba_lc::AbaLcBatch;
use wbft_net::CoinFlavor;

/// Averaged over five seeds: shared-coin rounds are coin-luck dependent.
fn measure_parallel(which: &str, parallelism: usize, seed: u64) -> f64 {
    (0..5).map(|k| measure_parallel_once(which, parallelism, seed + 100 * k)).sum::<f64>() / 5.0
}

fn measure_parallel_once(which: &str, parallelism: usize, seed: u64) -> f64 {
    let inputs = move |_: usize| CompInput::AbaParallel { parallelism, value: true };
    let result = match which {
        "ABA-LC" => run_component(4, seed, |_, _, p| Comp::AbaLc(AbaLcBatch::new(p)), inputs, 0),
        "ABA-SC" => run_component(
            4,
            seed,
            |_, c, p| aba_sc_comp(c, p, CoinFlavor::ThreshSig),
            inputs,
            0,
        ),
        "ABA-CP" => run_component(
            4,
            seed,
            |_, c, p| aba_sc_comp(c, p, CoinFlavor::CoinFlip),
            inputs,
            0,
        ),
        _ => unreachable!(),
    };
    assert!(result.completed, "{which} p={parallelism} did not complete");
    result.latency.as_secs_f64()
}

fn measure_serial(which: &str, count: usize, seed: u64) -> f64 {
    (0..5).map(|k| measure_serial_once(which, count, seed + 100 * k)).sum::<f64>() / 5.0
}

fn measure_serial_once(which: &str, count: usize, seed: u64) -> f64 {
    let inputs = move |_: usize| CompInput::AbaSerial { count, value: true };
    let result = match which {
        "ABA-LC" => run_component(4, seed, |_, _, p| Comp::AbaLc(AbaLcBatch::new(p)), inputs, 0),
        "ABA-SC" => run_component(
            4,
            seed,
            |_, c, p| aba_sc_serial_comp(c, p, CoinFlavor::ThreshSig),
            inputs,
            0,
        ),
        _ => unreachable!(),
    };
    assert!(result.completed, "{which} serial={count} did not complete");
    result.latency.as_secs_f64()
}

fn main() {
    fig12a();
    fig12b();
    println!("\n[fig12_aba] OK");
}

fn fig12a() {
    banner(
        "Fig. 12a — ABA latency (s) vs number of parallel instances",
        "4 nodes; unanimous inputs; ABA-LC = Bracha, ABA-SC = Cachin, ABA-CP = BEAT coin",
    );
    let widths = [8usize, 8, 8, 8, 8];
    let mut header = vec!["ABA".to_string()];
    header.extend((1..=4).map(|p| format!("p={p}")));
    println!("{}", row(&header, &widths));
    let mut results = Vec::new();
    for which in ["ABA-LC", "ABA-SC", "ABA-CP"] {
        let mut cells = vec![which.to_string()];
        let mut lats = Vec::new();
        for p in 1..=4 {
            let lat = measure_parallel(which, p, 41 + p as u64);
            lats.push(lat);
            cells.push(format!("{lat:.1}"));
        }
        println!("{}", row(&cells, &widths));
        results.push((which, lats));
    }
    let get = |name: &str, idx: usize| results.iter().find(|(w, _)| *w == name).unwrap().1[idx];
    // Shapes: CP below SC everywhere (cheaper coin ops).
    for p in 0..4 {
        assert!(
            get("ABA-CP", p) <= get("ABA-SC", p) * 1.15,
            "ABA-CP should not exceed ABA-SC materially at p={}",
            p + 1
        );
    }
    // The LC/SC *ratio* moves with parallelism; report it (the paper's
    // crossing depends on absolute crypto costs, ours on the same profiles).
    let ratio1 = get("ABA-LC", 0) / get("ABA-SC", 0);
    let ratio4 = get("ABA-LC", 3) / get("ABA-SC", 3);
    println!(
        "LC/SC latency ratio: {:.2} at p=1 -> {:.2} at p=4 (paper: LC catches up / wins by p=4)",
        ratio1, ratio4
    );
}

fn fig12b() {
    banner(
        "Fig. 12b — ABA latency (s) vs number of serial instances",
        "4 nodes; instances activated one after another (Dumbo's pattern)",
    );
    let widths = [8usize, 8, 8, 8, 8];
    let mut header = vec!["ABA".to_string()];
    header.extend((1..=4).map(|p| format!("s={p}")));
    println!("{}", row(&header, &widths));
    let mut results = Vec::new();
    for which in ["ABA-SC", "ABA-LC"] {
        let mut cells = vec![which.to_string()];
        let mut lats = Vec::new();
        for count in 1..=4 {
            let lat = measure_serial(which, count, 51 + count as u64);
            lats.push(lat);
            cells.push(format!("{lat:.1}"));
        }
        println!("{}", row(&cells, &widths));
        results.push((which, lats));
    }
    let sc = &results[0].1;
    let lc = &results[1].1;
    assert!(sc[3] > sc[0], "serial latency must grow with instance count");
    println!(
        "at s=4: ABA-SC {:.1}s vs ABA-LC {:.1}s (paper: serial ABA-SC below ABA-LC)",
        sc[3], lc[3]
    );
}
