//! Simulator event-loop hotpath bench — the perf baseline for the
//! allocation-reuse refactor (command/wake scratch buffers, DMA buffer
//! recycling, persistent engine scratch in `ProtocolNode`).
//!
//! Times complete single-hop runs through the public fuzz runner (which
//! reports the event count), prints µs/run and events/s per protocol, and
//! writes a JSON report to `target/reports/hotpath/` so CI can track the
//! event-loop throughput across PRs. Also asserts that repeated runs are
//! byte-identical — the refactor's correctness bar.

use std::time::Instant;
use wbft_bench::{banner, report_dir, row, write_json};
use wbft_consensus::fuzz::{base_case, coin_starvation_case, run_case, DEFAULT_EVENT_BUDGET};
use wbft_consensus::Protocol;
use wbft_report::{Json, ToJson};

/// Mean microseconds per call over `reps` calls (one warmup call first).
fn time_us<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let reps: u32 = std::env::var("WBFT_HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    banner(
        "Hotpath sim — event-loop throughput (full single-hop runs)",
        "one small epoch per run; events/s is the loop's aggregate rate",
    );
    let widths = [26usize, 9, 12, 12];
    println!(
        "{}",
        row(&["scenario".into(), "events".into(), "us/run".into(), "events/s".into()], &widths)
    );

    let cases = [
        base_case(Protocol::Beat, DEFAULT_EVENT_BUDGET),
        base_case(Protocol::HoneyBadgerSc, DEFAULT_EVENT_BUDGET),
        base_case(Protocol::DumboSc, DEFAULT_EVENT_BUDGET),
        // Scheduler interposition on the delivery path: the CoinStarve
        // policy decodes every frame, the worst per-delivery overhead.
        coin_starvation_case(Protocol::Beat, DEFAULT_EVENT_BUDGET),
    ];
    let mut rows = Vec::new();
    for case in &cases {
        let reference = run_case(case);
        assert_eq!(
            reference.to_json().pretty(),
            run_case(case).to_json().pretty(),
            "{}: repeated runs must be byte-identical",
            case.label
        );
        let us_per_run = time_us(reps, || run_case(case));
        let events_per_sec = reference.events as f64 * 1e6 / us_per_run;
        println!(
            "{}",
            row(
                &[
                    case.label.clone(),
                    reference.events.to_string(),
                    format!("{us_per_run:.0}"),
                    format!("{events_per_sec:.0}"),
                ],
                &widths
            )
        );
        rows.push(Json::obj([
            ("scenario", Json::str(case.label.clone())),
            ("events", Json::u64(reference.events)),
            ("us_per_run", Json::f64(us_per_run)),
            ("events_per_sec", Json::f64(events_per_sec)),
        ]));
    }

    let report = Json::obj([
        ("kind", Json::str("hotpath-sim")),
        ("reps", Json::u64(reps as u64)),
        ("runs", Json::arr(rows)),
    ]);
    let path = report_dir("hotpath").join("hotpath_sim.json");
    write_json(&path, &report);
    println!("\nreport: {}", path.display());
    println!("[hotpath_sim] OK (all runs deterministic)");
}
