//! Hotpath service microbench — the mempool and wire-codec counterpart of
//! `hotpath_crypto`.
//!
//! Times the per-transaction costs on the client-facing service path:
//! mempool admission (fresh, duplicate-reject, full-reject), the
//! pull/commit cycle, the client-channel codec, datagram framing, and
//! envelope seal/open (the per-packet consensus cost every submission
//! ultimately pays n² times). Prints the table and writes a JSON report to
//! `target/reports/hotpath/` so CI tracks the numbers across PRs.
//!
//! Acceptance gates are deliberately loose (shared runners are noisy):
//! admission must stay under 50µs/tx and the codecs under 100µs/op.

use rand::SeedableRng;
use std::time::Instant;
use wbft_bench::{banner, report_dir, row, write_json};
use wbft_consensus::service::Mempool;
use wbft_consensus::Block;
use wbft_crypto::CryptoSuite;
use wbft_net::{Body, Envelope, Sizing};
use wbft_report::Json;
use wbft_transport::ClientMsg;
use wbft_wireless::SimTime;

/// Mean microseconds per call over `reps` calls (one warmup call first).
fn time_us<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn tx_of(tag: u64) -> bytes::Bytes {
    let mut v = vec![0u8; 64];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    bytes::Bytes::from(v)
}

fn main() {
    let reps: u32 = std::env::var("WBFT_HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);

    // ------------------------------------------------------------ mempool
    banner(
        "Hotpath 1 — mempool admission and commit cycle (µs/tx)",
        "bounded digest-dedup FIFO pool, 64-byte transactions",
    );
    // Fresh admissions into a large pool (each rep admits a new tx).
    let mut pool = Mempool::new(1 << 20);
    let mut tag = 0u64;
    let admit_us = time_us(reps, || {
        tag += 1;
        pool.admit(tx_of(tag), SimTime::from_micros(tag))
    });
    // Duplicate rejects (same tx every time, pool already holds it).
    let dup = tx_of(1);
    let dup_reject_us = time_us(reps, || pool.admit(dup.clone(), SimTime::ZERO));
    // Full rejects against a saturated 1-slot pool.
    let mut tiny = Mempool::new(1);
    tiny.admit(tx_of(1), SimTime::ZERO);
    let mut tag2 = 1_000_000u64;
    let full_reject_us = time_us(reps, || {
        tag2 += 1;
        tiny.admit(tx_of(tag2), SimTime::ZERO)
    });
    // The full service cycle: admit a 16-tx wave, pull it, commit it.
    let mut cycle_pool = Mempool::new(1 << 20);
    let mut epoch = 0u64;
    let mut base = 2_000_000u64;
    let cycle_us = time_us(reps, || {
        for i in 0..16 {
            cycle_pool.admit(tx_of(base + i), SimTime::from_micros(base));
        }
        let batch = cycle_pool.next_batch(epoch, 16);
        cycle_pool.record_commit(
            &Block { epoch, txs: batch },
            SimTime::from_micros(base + 50),
        );
        epoch += 1;
        base += 16;
    }) / 16.0;
    println!("  admit (fresh)       {admit_us:9.2}");
    println!("  admit (dup reject)  {dup_reject_us:9.2}");
    println!("  admit (full reject) {full_reject_us:9.2}");
    println!("  pull+commit cycle   {cycle_us:9.2}  (per tx, 16-tx epochs)");

    // ------------------------------------------------------------- codecs
    banner(
        "Hotpath 2 — wire encode/decode (µs/op)",
        "client channel, datagram framing, and sealed consensus envelopes",
    );
    let widths = [22usize, 10, 10];
    println!("{}", row(&["codec".into(), "encode".into(), "decode".into()], &widths));

    let submit = ClientMsg::Submit { tx: tx_of(77) };
    let submit_bytes = submit.encode().expect("fits");
    let client_enc_us = time_us(reps, || submit.encode().expect("fits"));
    let client_dec_us = time_us(reps, || ClientMsg::decode(&submit_bytes).expect("valid"));
    println!(
        "{}",
        row(
            &[
                "client submit".into(),
                format!("{client_enc_us:.2}"),
                format!("{client_dec_us:.2}")
            ],
            &widths
        )
    );

    let datagram = wbft_net::datagram::Datagram {
        src: 2,
        channel: 0,
        nominal_len: 200,
        payload: submit_bytes.clone(),
    };
    let datagram_bytes = datagram.encode().expect("fits");
    let dgram_enc_us = time_us(reps, || datagram.encode().expect("fits"));
    let dgram_dec_us =
        time_us(reps, || wbft_net::datagram::Datagram::decode(&datagram_bytes).expect("valid"));
    println!(
        "{}",
        row(
            &["datagram".into(), format!("{dgram_enc_us:.2}"), format!("{dgram_dec_us:.2}")],
            &widths
        )
    );

    // Envelope seal/open: the real per-packet cost (ECDSA-class sign and
    // verify over the body) every proposal, vote and share pays.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5e41);
    let crypto = wbft_components::deal_node_crypto(4, CryptoSuite::light(), &mut rng).remove(0);
    let sizing = Sizing { n: 4, suite: crypto.suite };
    let env = Envelope {
        src: 0,
        session: 16,
        body: Body::RbcEchoReady {
            roots: vec![wbft_crypto::Digest32([0; 32]); 4],
            echo: wbft_net::Bitmap::new(4),
            ready: wbft_net::Bitmap::new(4),
            echo_nack: wbft_net::Bitmap::new(4),
            ready_nack: wbft_net::Bitmap::new(4),
            init_nack: wbft_net::Bitmap::new(4),
        },
    };
    let (sealed, _) = env.seal(&crypto.keypair, &sizing).expect("seals");
    let seal_us = time_us(reps, || env.seal(&crypto.keypair, &sizing).expect("seals"));
    let peer_keys = crypto.peer_keys.clone();
    let open_us = time_us(reps, || {
        Envelope::open(&sealed, |src| peer_keys.get(src as usize).copied()).expect("opens")
    });
    println!(
        "{}",
        row(
            &["envelope (signed)".into(), format!("{seal_us:.2}"), format!("{open_us:.2}")],
            &widths
        )
    );

    // ------------------------------------------------------------- report
    let report = Json::obj([
        ("kind", Json::str("hotpath-service")),
        ("reps", Json::u64(reps as u64)),
        (
            "mempool",
            Json::obj([
                ("admit_us", Json::f64(admit_us)),
                ("dup_reject_us", Json::f64(dup_reject_us)),
                ("full_reject_us", Json::f64(full_reject_us)),
                ("cycle_per_tx_us", Json::f64(cycle_us)),
            ]),
        ),
        (
            "wire",
            Json::obj([
                ("client_encode_us", Json::f64(client_enc_us)),
                ("client_decode_us", Json::f64(client_dec_us)),
                ("datagram_encode_us", Json::f64(dgram_enc_us)),
                ("datagram_decode_us", Json::f64(dgram_dec_us)),
                ("envelope_seal_us", Json::f64(seal_us)),
                ("envelope_open_us", Json::f64(open_us)),
            ]),
        ),
    ]);
    let path = report_dir("hotpath").join("hotpath_service.json");
    write_json(&path, &report);
    println!("\nreport: {}", path.display());

    // Loose floors; the JSON above tracks the real trajectory.
    for (name, us, floor) in [
        ("mempool admit", admit_us, 50.0),
        ("dup reject", dup_reject_us, 50.0),
        ("full reject", full_reject_us, 50.0),
        ("cycle per tx", cycle_us, 50.0),
        ("client encode", client_enc_us, 100.0),
        ("client decode", client_dec_us, 100.0),
        ("datagram encode", dgram_enc_us, 100.0),
        ("datagram decode", dgram_dec_us, 100.0),
    ] {
        assert!(us < floor, "{name} regressed to {us:.1}µs (floor {floor}µs)");
    }
    println!("[hotpath_service] OK (admit {admit_us:.2}µs/tx, seal {seal_us:.1}µs)");
}
