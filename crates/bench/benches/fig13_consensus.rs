//! Fig. 13 — latency and throughput of the eight consensus deployments,
//! single-hop (a: 4 nodes) and multi-hop (b: 16 nodes in 4 clusters).
//!
//! Runs as a declarative [`SweepSpec`] through the parallel executor; the
//! per-scenario JSON reports land in `target/reports/fig13{a,b}/` and the
//! tables below are rendered from the *decoded files*, not the in-memory
//! results — regenerating a figure never requires re-simulation.
//!
//! Expected shapes (paper): every ConsensusBatcher protocol beats its
//! baseline by roughly half the latency and 1.5–1.7× the throughput
//! (52–69 % / 50–70 % single-hop; 48–59 % / 48–62 % multi-hop); BEAT leads;
//! HoneyBadgerBFT beats Dumbo in wireless (inverse of the wired ranking);
//! shared-coin variants edge local-coin ones.

use wbft_bench::{banner, row};
use wbft_consensus::report::{read_report, report_root, write_reports};
use wbft_consensus::sweep::{run_sweep, sweep_threads, SweepSpec};
use wbft_consensus::testbed::RunReport;
use wbft_consensus::Protocol;

fn sweep_scenario(title: &str, note: &str, multihop: bool, seed: u64) -> Vec<(Protocol, RunReport)> {
    banner(title, note);
    let spec = SweepSpec::fig13(if multihop { "fig13b" } else { "fig13a" }, multihop, seed);
    let threads = sweep_threads();
    let runs = run_sweep(&spec, threads);
    let dir = report_root().join(&spec.name);
    let paths = write_reports(&dir, &runs).expect("writing reports must succeed");

    // Render from the decoded JSON files (the files are the interface).
    let widths = [28usize, 12, 12, 14];
    println!(
        "{}",
        row(
            &["protocol".into(), "latency (s)".into(), "TPM".into(), "accesses/node".into()],
            &widths
        )
    );
    let mut results = Vec::new();
    for path in &paths {
        let (_, cfg, report) = read_report(path).expect("report file must decode");
        assert!(report.completed, "{} (multihop={multihop}) did not complete", cfg.protocol);
        println!(
            "{}",
            row(
                &[
                    cfg.protocol.name().into(),
                    format!("{:.1}", report.mean_latency_s),
                    format!("{:.1}", report.throughput_tpm),
                    format!("{:.1}", report.channel_accesses_per_node),
                ],
                &widths
            )
        );
        results.push((cfg.protocol, report));
    }
    println!("({} reports in {}, {} worker threads)", paths.len(), dir.display(), threads);
    results
}

fn check_improvements(results: &[(Protocol, RunReport)], scenario: &str) {
    let get = |p: Protocol| results.iter().find(|(q, _)| *q == p).unwrap().1.clone();
    let pairs = [
        (Protocol::HoneyBadgerSc, Protocol::HoneyBadgerScBaseline),
        (Protocol::Beat, Protocol::BeatBaseline),
        (Protocol::DumboSc, Protocol::DumboScBaseline),
    ];
    println!("\n{scenario}: ConsensusBatcher vs baseline");
    for (batched, baseline) in pairs {
        let b = get(batched);
        let o = get(baseline);
        let lat_gain = (1.0 - b.mean_latency_s / o.mean_latency_s) * 100.0;
        let tpm_gain = (b.throughput_tpm / o.throughput_tpm - 1.0) * 100.0;
        println!(
            "  {:<22} latency -{lat_gain:.0}%  throughput +{tpm_gain:.0}%",
            batched.name()
        );
        assert!(
            b.mean_latency_s < o.mean_latency_s,
            "{batched} must beat {baseline} on latency"
        );
        assert!(
            b.throughput_tpm > o.throughput_tpm,
            "{batched} must beat {baseline} on throughput"
        );
    }
    // Protocol ranking among the batched five.
    let beat = get(Protocol::Beat);
    let hb = get(Protocol::HoneyBadgerSc);
    let dumbo = get(Protocol::DumboSc);
    // BEAT and HB-SC are near-tied in this reproduction (BEAT's cheaper
    // coin ops vs its larger coin shares roughly cancel at N=4); assert
    // they stay within noise of each other rather than a strict win.
    assert!(
        beat.mean_latency_s <= hb.mean_latency_s * 1.35,
        "BEAT should lead or tie HB-SC (got {:.1}s vs {:.1}s)",
        beat.mean_latency_s,
        hb.mean_latency_s
    );
    assert!(
        hb.mean_latency_s < dumbo.mean_latency_s,
        "wireless ranking: HoneyBadger beats Dumbo (inverse of wired)"
    );
    println!(
        "  ranking: BEAT ~ HB-SC < Dumbo-SC ✓ (paper Fig. 13; BEAT {:.1}s, HB-SC {:.1}s)",
        beat.mean_latency_s, hb.mean_latency_s
    );
}

fn main() {
    let single = sweep_scenario(
        "Fig. 13a — 8 protocols, single-hop (4 nodes, LoRa, 2 epochs)",
        "paper: batching cuts latency 52-69% and lifts throughput 50-70%",
        false,
        61,
    );
    check_improvements(&single, "single-hop");

    let multi = sweep_scenario(
        "Fig. 13b — 8 protocols, multi-hop (16 nodes, 4 clusters, 1 epoch)",
        "paper: batching cuts latency 48-59% and lifts throughput 48-62%",
        true,
        62,
    );
    check_improvements(&multi, "multi-hop");

    println!("\n[fig13_consensus] OK");
}
