//! Fig. 13 — latency and throughput of the eight consensus deployments,
//! single-hop (a: 4 nodes) and multi-hop (b: 16 nodes in 4 clusters).
//!
//! Expected shapes (paper): every ConsensusBatcher protocol beats its
//! baseline by roughly half the latency and 1.5–1.7× the throughput
//! (52–69 % / 50–70 % single-hop; 48–59 % / 48–62 % multi-hop); BEAT leads;
//! HoneyBadgerBFT beats Dumbo in wireless (inverse of the wired ranking);
//! shared-coin variants edge local-coin ones.

use wbft_bench::{banner, row};
use wbft_consensus::testbed::{run, RunReport, TestbedConfig};
use wbft_consensus::Protocol;

fn run_one(protocol: Protocol, multihop: bool, seed: u64) -> RunReport {
    let mut cfg = if multihop {
        TestbedConfig::multi_hop(protocol)
    } else {
        TestbedConfig::single_hop(protocol)
    };
    cfg.epochs = if multihop { 1 } else { 2 };
    // Multi-hop batch kept smaller: the *unbatched* baselines collapse the
    // shared channel at larger proposals (which is the paper's congestion
    // argument, but we need the baseline rows to finish).
    cfg.workload.batch_size = if multihop { 16 } else { 24 };
    cfg.seed = seed;
    // Collisions make unbatched deployments crawl; give them headroom.
    cfg.deadline = wbft_wireless::SimDuration::from_secs(14_400);
    let report = run(&cfg);
    assert!(report.completed, "{protocol} (multihop={multihop}) did not complete");
    report
}

fn print_scenario(title: &str, note: &str, multihop: bool, seed: u64) -> Vec<(Protocol, RunReport)> {
    banner(title, note);
    let widths = [28usize, 12, 12, 14];
    println!(
        "{}",
        row(
            &["protocol".into(), "latency (s)".into(), "TPM".into(), "accesses/node".into()],
            &widths
        )
    );
    let mut results = Vec::new();
    for protocol in Protocol::ALL {
        let report = run_one(protocol, multihop, seed);
        println!(
            "{}",
            row(
                &[
                    protocol.name().into(),
                    format!("{:.1}", report.mean_latency_s),
                    format!("{:.1}", report.throughput_tpm),
                    format!("{:.1}", report.channel_accesses_per_node),
                ],
                &widths
            )
        );
        results.push((protocol, report));
    }
    results
}

fn check_improvements(results: &[(Protocol, RunReport)], scenario: &str) {
    let get = |p: Protocol| results.iter().find(|(q, _)| *q == p).unwrap().1.clone();
    let pairs = [
        (Protocol::HoneyBadgerSc, Protocol::HoneyBadgerScBaseline),
        (Protocol::Beat, Protocol::BeatBaseline),
        (Protocol::DumboSc, Protocol::DumboScBaseline),
    ];
    println!("\n{scenario}: ConsensusBatcher vs baseline");
    for (batched, baseline) in pairs {
        let b = get(batched);
        let o = get(baseline);
        let lat_gain = (1.0 - b.mean_latency_s / o.mean_latency_s) * 100.0;
        let tpm_gain = (b.throughput_tpm / o.throughput_tpm - 1.0) * 100.0;
        println!(
            "  {:<22} latency -{lat_gain:.0}%  throughput +{tpm_gain:.0}%",
            batched.name()
        );
        assert!(
            b.mean_latency_s < o.mean_latency_s,
            "{batched} must beat {baseline} on latency"
        );
        assert!(
            b.throughput_tpm > o.throughput_tpm,
            "{batched} must beat {baseline} on throughput"
        );
    }
    // Protocol ranking among the batched five.
    let beat = get(Protocol::Beat);
    let hb = get(Protocol::HoneyBadgerSc);
    let dumbo = get(Protocol::DumboSc);
    // BEAT and HB-SC are near-tied in this reproduction (BEAT's cheaper
    // coin ops vs its larger coin shares roughly cancel at N=4); assert
    // they stay within noise of each other rather than a strict win.
    assert!(
        beat.mean_latency_s <= hb.mean_latency_s * 1.35,
        "BEAT should lead or tie HB-SC (got {:.1}s vs {:.1}s)",
        beat.mean_latency_s,
        hb.mean_latency_s
    );
    assert!(
        hb.mean_latency_s < dumbo.mean_latency_s,
        "wireless ranking: HoneyBadger beats Dumbo (inverse of wired)"
    );
    println!(
        "  ranking: BEAT ~ HB-SC < Dumbo-SC ✓ (paper Fig. 13; BEAT {:.1}s, HB-SC {:.1}s)",
        beat.mean_latency_s, hb.mean_latency_s
    );
}

fn main() {
    let single = print_scenario(
        "Fig. 13a — 8 protocols, single-hop (4 nodes, LoRa, 2 epochs)",
        "paper: batching cuts latency 52-69% and lifts throughput 50-70%",
        false,
        61,
    );
    check_improvements(&single, "single-hop");

    let multi = print_scenario(
        "Fig. 13b — 8 protocols, multi-hop (16 nodes, 4 clusters, 1 epoch)",
        "paper: batching cuts latency 48-59% and lifts throughput 48-62%",
        true,
        62,
    );
    check_improvements(&multi, "multi-hop");

    println!("\n[fig13_consensus] OK");
}
