//! Fig. 10 — cryptographic tools: operation latency (a, b), signature
//! sizes (c), and their end-to-end impact on HoneyBadgerBFT (d).
//!
//! (a)/(b)/(c) print the calibrated per-curve profiles the simulator
//! charges (read off the paper's measurements on STM32F767 + MIRACL /
//! micro-ecc; see EXPERIMENTS.md) next to wall-clock timings of this
//! crate's actual substitute implementations for context. (d) runs wireless
//! HoneyBadgerBFT-SC under the secp160r1+BN158 and secp192r1+BN254 suites
//! and reports latency and throughput.

use std::time::Instant;
use wbft_bench::{banner, row};
use wbft_consensus::report::{read_report, report_root, write_reports};
use wbft_consensus::sweep::{run_sweep, sweep_threads, SweepSpec};
use wbft_consensus::Protocol;
use wbft_crypto::{thresh_coin, thresh_sig, CryptoSuite, EcdsaCurve, ThresholdCurve};

fn main() {
    fig10a();
    fig10b();
    fig10c();
    fig10d();
    println!("\n[fig10_crypto] OK");
}

fn fig10a() {
    banner(
        "Fig. 10a — threshold signature basic-operation latency (ms)",
        "calibrated virtual costs charged by the simulator, per curve",
    );
    let widths = [10usize, 8, 8, 12, 13, 11];
    println!(
        "{}",
        row(
            &[
                "curve".into(),
                "dealer".into(),
                "sign".into(),
                "verifyshare".into(),
                "combineshare".into(),
                "verifysig".into()
            ],
            &widths
        )
    );
    for curve in ThresholdCurve::ALL {
        let p = curve.signature_profile();
        println!(
            "{}",
            row(
                &[
                    curve.name().into(),
                    format!("{:.0}", p.dealer_us as f64 / 1e3),
                    format!("{:.0}", p.sign_share_us as f64 / 1e3),
                    format!("{:.0}", p.verify_share_us as f64 / 1e3),
                    format!("{:.0}", p.combine_us as f64 / 1e3),
                    format!("{:.0}", p.verify_signature_us as f64 / 1e3),
                ],
                &widths
            )
        );
    }
    // Wall-clock of the substitute implementation, for context.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let t0 = Instant::now();
    let (pks, sks) = thresh_sig::deal(4, 1, ThresholdCurve::Bn158, &mut rng);
    let dealer = t0.elapsed();
    let t0 = Instant::now();
    let share = sks[0].sign_share(b"bench");
    let sign = t0.elapsed();
    let t0 = Instant::now();
    pks.verify_share(b"bench", &share).unwrap();
    let verify = t0.elapsed();
    let shares = [share, sks[1].sign_share(b"bench")];
    let t0 = Instant::now();
    let sig = pks.combine(&shares).unwrap();
    let combine = t0.elapsed();
    let t0 = Instant::now();
    pks.verify(b"bench", &sig).unwrap();
    let vsig = t0.elapsed();
    println!(
        "(substitute impl wall-clock: dealer {dealer:?}, sign {sign:?}, verifyshare {verify:?}, combine {combine:?}, verifysig {vsig:?})"
    );
}

fn fig10b() {
    banner(
        "Fig. 10b — threshold coin-flipping basic-operation latency (ms)",
        "cheaper than threshold signatures on every curve (BEAT's trade)",
    );
    let widths = [10usize, 8, 8, 12, 13];
    println!(
        "{}",
        row(
            &[
                "curve".into(),
                "dealer".into(),
                "sign".into(),
                "verifyshare".into(),
                "combineshare".into()
            ],
            &widths
        )
    );
    for curve in ThresholdCurve::ALL {
        let p = curve.coin_profile();
        let s = curve.signature_profile();
        assert!(p.sign_share_us < s.sign_share_us);
        println!(
            "{}",
            row(
                &[
                    curve.name().into(),
                    format!("{:.0}", p.dealer_us as f64 / 1e3),
                    format!("{:.0}", p.sign_share_us as f64 / 1e3),
                    format!("{:.0}", p.verify_share_us as f64 / 1e3),
                    format!("{:.0}", p.combine_us as f64 / 1e3),
                ],
                &widths
            )
        );
    }
    // Exercise the real coin once so the numbers describe live code.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let (cpub, csec) = thresh_coin::deal_coin(4, 1, ThresholdCurve::Bn158, &mut rng);
    let name = thresh_coin::CoinName { session: 1, round: 0, domain: 0 };
    let shares: Vec<_> = csec[..2].iter().map(|s| s.coin_share(name)).collect();
    let _ = cpub.combine(name, &shares).unwrap();
}

fn fig10c() {
    banner(
        "Fig. 10c — signature sizes (bytes)",
        "public-key digital signatures (micro-ecc) and threshold signatures (MIRACL)",
    );
    let widths = [12usize, 28];
    println!("{}", row(&["curve".into(), "signature bytes".into()], &widths));
    for curve in EcdsaCurve::ALL {
        println!(
            "{}",
            row(
                &[curve.name().into(), format!("{} (PK digital)", curve.profile().signature_bytes)],
                &widths
            )
        );
    }
    for curve in ThresholdCurve::ALL {
        println!(
            "{}",
            row(
                &[
                    curve.name().into(),
                    format!("{} (threshold)", curve.signature_profile().signature_bytes)
                ],
                &widths
            )
        );
    }
    assert_eq!(ThresholdCurve::Bn158.signature_profile().signature_bytes, 21);
    assert_eq!(EcdsaCurve::Secp160r1.profile().signature_bytes, 40);
}

fn fig10d() {
    banner(
        "Fig. 10d — HoneyBadgerBFT-SC latency/throughput vs crypto suite",
        "secp160r1+BN158 (light) against secp192r1+BN254 (medium); 4 nodes, 1 epoch",
    );
    // A two-point sweep along the crypto-suite axis; the table renders from
    // the decoded JSON reports in target/reports/fig10d/.
    let spec = SweepSpec {
        protocols: vec![Protocol::HoneyBadgerSc],
        suites: vec![CryptoSuite::light(), CryptoSuite::medium()],
        batch_size: 24,
        ..SweepSpec::new("fig10d")
    };
    let runs = run_sweep(&spec, sweep_threads());
    let dir = report_root().join(&spec.name);
    let paths = write_reports(&dir, &runs).expect("writing reports must succeed");
    let widths = [22usize, 12, 14];
    println!(
        "{}",
        row(&["suite".into(), "latency (s)".into(), "TPM".into()], &widths)
    );
    let mut results = Vec::new();
    for path in &paths {
        let (_, cfg, report) = read_report(path).expect("report file must decode");
        let label = format!("{}+{}", cfg.suite.ecdsa.name(), cfg.suite.threshold.name());
        assert!(report.completed, "{label} run must finish");
        println!(
            "{}",
            row(
                &[
                    label,
                    format!("{:.1}", report.mean_latency_s),
                    format!("{:.1}", report.throughput_tpm)
                ],
                &widths
            )
        );
        results.push(report);
    }
    assert!(
        results[0].mean_latency_s < results[1].mean_latency_s,
        "paper shape: the lighter suite must have lower latency"
    );
    assert!(
        results[0].throughput_tpm > results[1].throughput_tpm,
        "paper shape: the lighter suite must have higher throughput"
    );
    println!("shape check: lighter curves improve both metrics ✓ (paper: ~20 s latency, ~4.7 TPM gap)");
}
