//! Hotpath crypto microbench — the repo's first perf-trajectory baseline.
//!
//! Times the exponentiation fast paths that dominate every simulated
//! deployment (fixed-base windowed pow, simultaneous multi-exponentiation,
//! batched share verification at the quorum sizes the protocols actually
//! collect: `f+1`/`2f+1` for n = 4, 13, 25) against their naive
//! counterparts, prints the table, and writes a JSON report to
//! `target/reports/hotpath/` so CI can track the numbers across PRs.
//!
//! Acceptance gate: quorum-9 batched share verification must be ≥ 3× faster
//! than per-share verification.

use rand::SeedableRng;
use std::time::Instant;
use wbft_bench::{banner, report_dir, row, write_json};
use wbft_crypto::{thresh_sig, GroupElem, PrecomputedBase, Scalar, ThresholdCurve};
use wbft_report::Json;

/// Quorum sizes under test: the `f+1` and `2f+1` thresholds of small and
/// mid-size deployments.
const QUORUMS: [usize; 4] = [2, 5, 9, 17];

/// Mean microseconds per call over `reps` calls (one warmup call first).
fn time_us<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn rand_scalars(rng: &mut impl rand::RngCore, k: usize) -> Vec<Scalar> {
    (0..k).map(|_| Scalar::random(rng)).collect()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfa57);
    let reps: u32 = std::env::var("WBFT_HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    // ---------------------------------------------------------- single pow
    banner(
        "Hotpath 1 — fixed-base exponentiation (µs/op)",
        "square-and-multiply vs 4-bit-window table (the generator's table)",
    );
    let exps = rand_scalars(&mut rng, 32);
    let g = GroupElem::generator();
    let mut i = 0usize;
    let naive_pow_us = time_us(reps, || {
        i += 1;
        g.pow(&exps[i % exps.len()])
    });
    let mut i = 0usize;
    let windowed_pow_us = time_us(reps, || {
        i += 1;
        GroupElem::from_exponent(&exps[i % exps.len()])
    });
    let base = GroupElem::from_exponent(&exps[0]);
    let table_build_us = time_us(reps.min(16), || PrecomputedBase::new(&base));
    println!("  naive pow        {naive_pow_us:9.1}");
    println!("  windowed pow     {windowed_pow_us:9.1}");
    println!("  table build      {table_build_us:9.1} (one-time per base)");
    assert!(
        windowed_pow_us < naive_pow_us,
        "windowed pow ({windowed_pow_us:.1}µs) must beat naive ({naive_pow_us:.1}µs)"
    );

    // ------------------------------------------------------ multi_pow
    banner(
        "Hotpath 2 — simultaneous multi-exponentiation (µs/op)",
        "Π bᵢ^eᵢ: naive per-base pows vs Straus/Pippenger multi_pow",
    );
    let widths = [6usize, 12, 12, 9];
    println!(
        "{}",
        row(&["k".into(), "naive".into(), "multi_pow".into(), "speedup".into()], &widths)
    );
    let mut multi_rows = Vec::new();
    for k in QUORUMS {
        let pairs: Vec<(GroupElem, Scalar)> = rand_scalars(&mut rng, k)
            .into_iter()
            .map(|e| (GroupElem::from_exponent(&e), Scalar::random(&mut rng)))
            .collect();
        let naive = pairs.iter().fold(GroupElem::identity(), |acc, (b, e)| acc.mul(&b.pow(e)));
        assert_eq!(GroupElem::multi_pow(&pairs), naive, "multi_pow disagrees at k={k}");
        let naive_us = time_us(reps, || {
            pairs.iter().fold(GroupElem::identity(), |acc, (b, e)| acc.mul(&b.pow(e)))
        });
        let multi_us = time_us(reps, || GroupElem::multi_pow(&pairs));
        let speedup = naive_us / multi_us;
        println!(
            "{}",
            row(
                &[
                    k.to_string(),
                    format!("{naive_us:.1}"),
                    format!("{multi_us:.1}"),
                    format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
        multi_rows.push(Json::obj([
            ("k", Json::u64(k as u64)),
            ("naive_us", Json::f64(naive_us)),
            ("multi_pow_us", Json::f64(multi_us)),
            ("speedup", Json::f64(speedup)),
        ]));
    }

    // -------------------------------------------------- batch verification
    banner(
        "Hotpath 3 — share verification at quorum size (µs/quorum)",
        "per-share checks vs one random-linear-combination batch",
    );
    let widths = [8usize, 12, 12, 14, 9];
    println!(
        "{}",
        row(
            &[
                "quorum".into(),
                "per-share".into(),
                "batch".into(),
                "batch+table".into(),
                "speedup".into()
            ],
            &widths
        )
    );
    let msg = b"hotpath: batched share verification";
    let mut batch_rows = Vec::new();
    let mut speedup_q9 = 0.0f64;
    for q in QUORUMS {
        // A (q-1, q) deal: exactly q shares form the quorum under test.
        let (pks, sks) = thresh_sig::deal(q, q - 1, ThresholdCurve::Bn158, &mut rng);
        let shares: Vec<_> = sks.iter().map(|sk| sk.sign_share(msg)).collect();
        pks.verify_shares(msg, &shares).expect("honest batch must verify");
        let per_share_us = time_us(reps, || {
            for s in &shares {
                pks.verify_share(msg, s).unwrap();
            }
        });
        let batch_us = time_us(reps, || pks.verify_shares(msg, &shares).unwrap());
        // Same keys with the opt-in window tables built.
        let pks_tables = pks.clone();
        pks_tables.precompute();
        let batch_precomp_us =
            time_us(reps, || pks_tables.verify_shares(msg, &shares).unwrap());
        let speedup = per_share_us / batch_us;
        if q == 9 {
            speedup_q9 = speedup;
        }
        println!(
            "{}",
            row(
                &[
                    q.to_string(),
                    format!("{per_share_us:.1}"),
                    format!("{batch_us:.1}"),
                    format!("{batch_precomp_us:.1}"),
                    format!("{speedup:.2}x"),
                ],
                &widths
            )
        );
        batch_rows.push(Json::obj([
            ("quorum", Json::u64(q as u64)),
            ("per_share_us", Json::f64(per_share_us)),
            ("batch_us", Json::f64(batch_us)),
            ("batch_precomp_us", Json::f64(batch_precomp_us)),
            ("speedup", Json::f64(speedup)),
        ]));
    }

    // ----------------------------------------------------------- report
    let report = Json::obj([
        ("kind", Json::str("hotpath-crypto")),
        ("reps", Json::u64(reps as u64)),
        (
            "pow",
            Json::obj([
                ("naive_us", Json::f64(naive_pow_us)),
                ("windowed_us", Json::f64(windowed_pow_us)),
                ("table_build_us", Json::f64(table_build_us)),
            ]),
        ),
        ("multi_pow", Json::arr(multi_rows)),
        ("batch_verify", Json::arr(batch_rows)),
    ]);
    let path = report_dir("hotpath").join("hotpath_crypto.json");
    write_json(&path, &report);
    println!("\nreport: {}", path.display());

    // Acceptance floor, overridable for noisy shared runners (CI passes a
    // lower floor and tracks the real number through the JSON report).
    let floor: f64 = std::env::var("WBFT_HOTPATH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    assert!(
        speedup_q9 >= floor,
        "quorum-9 batch verification speedup {speedup_q9:.2}x below the {floor}x floor"
    );
    println!("[hotpath_crypto] OK (quorum-9 batch speedup {speedup_q9:.2}x >= {floor}x)");
}
