//! Fig. 11 — broadcast-protocol latency vs. parallelism (a) and proposal
//! size (b), on a 4-node single-hop LoRa network.
//!
//! Each subfigure is a declarative grid of measurement points fanned across
//! worker threads with `parallel_map`; the measured curve is written to
//! `target/reports/fig11/fig11{a,b}.json` and the table below is rendered
//! from the decoded file.
//!
//! Expected shapes (paper): CBC and PRBC (threshold signatures) sit above
//! RBC; RBC-small and CBC-small are flatter across parallelism and win more
//! as parallelism grows (~35.5 % / 27.8 % at parallelism 4); latency grows
//! with proposal size, with the CBC–RBC gap widening and the CBC–PRBC gap
//! narrowing (crypto dominates message count).

use std::path::Path;
use wbft_bench::{
    banner, proposal_of_packets, read_json, report_dir, row, run_component, write_json, Comp,
    CompInput,
};
use wbft_components::baseline::BaselineCbcSet;
use wbft_components::cbc::{CbcBatch, CbcSmallBatch};
use wbft_components::prbc::PrbcBatch;
use wbft_components::rbc::RbcBatch;
use wbft_components::rbc_small::RbcSmallBatch;
use wbft_consensus::sweep::{parallel_map, sweep_threads};
use wbft_report::Json;

/// One measurement point of the grid.
#[derive(Clone, Copy)]
struct Point {
    proto: &'static str,
    parallelism: usize,
    packets: usize,
    seed: u64,
}

/// Latency of one protocol at one grid point, averaged over three seeds to
/// smooth CSMA/backoff luck.
fn measure(pt: &Point) -> f64 {
    (0..3).map(|k| measure_once(pt.proto, pt.parallelism, pt.packets, pt.seed + 100 * k)).sum::<f64>()
        / 3.0
}

fn measure_once(which: &str, parallelism: usize, packets: usize, seed: u64) -> f64 {
    let inputs = move |i: usize| {
        CompInput::Value((i < parallelism).then(|| proposal_of_packets(packets, i)))
    };
    let result = match which {
        "RBC" => run_component(4, seed, |_, _, p| Comp::Rbc(RbcBatch::new(p)), inputs, parallelism),
        "RBC-small" => {
            run_component(4, seed, |_, _, p| Comp::RbcSmall(RbcSmallBatch::new(p)), inputs, parallelism)
        }
        "CBC" => run_component(
            4,
            seed,
            |_, c, p| Comp::Cbc(CbcBatch::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "CBC-small" => run_component(
            4,
            seed,
            |_, c, p| Comp::CbcSmall(CbcSmallBatch::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "PRBC" => run_component(
            4,
            seed,
            |_, c, p| Comp::Prbc(PrbcBatch::new(p, c.prbc_pub.clone(), c.prbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "CBC-baseline" => run_component(
            4,
            seed,
            |_, c, p| Comp::BaseCbc(BaselineCbcSet::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        _ => unreachable!(),
    };
    assert!(result.completed, "{which} p={parallelism} did not complete");
    result.latency.as_secs_f64()
}

/// Measures a grid in parallel and writes `<file>` with one record per
/// point: `{"proto", "parallelism", "packets", "latency_s"}`.
fn sweep_grid(points: &[Point], file: &Path) {
    let latencies = parallel_map(points, sweep_threads(), |_, pt| measure(pt));
    let records: Vec<Json> = points
        .iter()
        .zip(&latencies)
        .map(|(pt, lat)| {
            Json::obj([
                ("proto", Json::str(pt.proto)),
                ("parallelism", Json::u64(pt.parallelism as u64)),
                ("packets", Json::u64(pt.packets as u64)),
                ("latency_s", Json::f64(*lat)),
            ])
        })
        .collect();
    write_json(file, &Json::obj([("points", Json::arr(records))]));
}

/// Reads a grid file back into `(proto, x-value, latency)` rows.
fn load_grid(file: &Path, x_key: &str) -> Vec<(String, usize, f64)> {
    read_json(file)
        .get("points")
        .and_then(Json::as_arr)
        .expect("grid file must contain points")
        .iter()
        .map(|p| {
            (
                p.get("proto").and_then(Json::as_str).expect("proto").to_string(),
                p.get(x_key).and_then(Json::as_u64).expect("x value") as usize,
                p.get("latency_s").and_then(Json::as_f64).expect("latency"),
            )
        })
        .collect()
}

fn print_curves(rows: &[(String, usize, f64)], protos: &[&str], x_label: &str) -> Vec<(String, Vec<f64>)> {
    let widths = [11usize, 8, 8, 8, 8];
    let mut header = vec!["protocol".to_string()];
    header.extend((1..=4).map(|x| format!("{x_label}{x}")));
    println!("{}", row(&header, &widths));
    let mut table = Vec::new();
    for proto in protos {
        let mut cells = vec![proto.to_string()];
        let mut lats = Vec::new();
        for x in 1..=4 {
            let lat = rows
                .iter()
                .find(|(p, px, _)| p == proto && *px == x)
                .unwrap_or_else(|| panic!("missing point {proto}/{x}"))
                .2;
            lats.push(lat);
            cells.push(format!("{lat:.1}"));
        }
        println!("{}", row(&cells, &widths));
        table.push((proto.to_string(), lats));
    }
    table
}

fn main() {
    let dir = report_dir("fig11");
    fig11a(&dir);
    fig11b(&dir);
    println!("\n[fig11_broadcast] OK");
}

fn fig11a(dir: &Path) {
    banner(
        "Fig. 11a — broadcast latency (s) vs number of parallel instances",
        "4 nodes; 1-packet proposals; LoRa airtime + calibrated crypto costs",
    );
    let protos = ["RBC", "RBC-small", "CBC", "CBC-small", "PRBC"];
    let points: Vec<Point> = protos
        .iter()
        .flat_map(|&proto| {
            (1..=4).map(move |parallelism| Point {
                proto,
                parallelism,
                packets: 1,
                seed: 21 + parallelism as u64,
            })
        })
        .collect();
    let file = dir.join("fig11a.json");
    sweep_grid(&points, &file);
    let table = print_curves(&load_grid(&file, "parallelism"), &protos, "p=");
    // Shape checks at parallelism 4.
    let get = |name: &str| table.iter().find(|(p, _)| p == name).unwrap().1[3];
    assert!(get("RBC-small") < get("RBC"), "RBC-small must beat RBC at p=4");
    assert!(get("CBC-small") < get("CBC"), "CBC-small must beat CBC at p=4");
    assert!(get("RBC") < get("PRBC"), "PRBC adds the DONE phase above RBC");
    println!(
        "shape: small variants win at p=4 (paper: 35.5% / 27.8%); measured {:.0}% / {:.0}%",
        (1.0 - get("RBC-small") / get("RBC")) * 100.0,
        (1.0 - get("CBC-small") / get("CBC")) * 100.0,
    );
}

fn fig11b(dir: &Path) {
    banner(
        "Fig. 11b — broadcast latency (s) vs proposal size (packets)",
        "4 nodes; parallelism 4",
    );
    let protos = ["RBC", "PRBC", "CBC"];
    let points: Vec<Point> = protos
        .iter()
        .flat_map(|&proto| {
            (1..=4).map(move |packets| Point {
                proto,
                parallelism: 4,
                packets,
                seed: 31 + packets as u64,
            })
        })
        .collect();
    let file = dir.join("fig11b.json");
    sweep_grid(&points, &file);
    let table = print_curves(&load_grid(&file, "packets"), &protos, "");
    for (proto, lats) in &table {
        assert!(
            lats[3] > lats[0],
            "{proto}: latency must grow with proposal size ({lats:?})"
        );
    }
}
