//! Fig. 11 — broadcast-protocol latency vs. parallelism (a) and proposal
//! size (b), on a 4-node single-hop LoRa network.
//!
//! Expected shapes (paper): CBC and PRBC (threshold signatures) sit above
//! RBC; RBC-small and CBC-small are flatter across parallelism and win more
//! as parallelism grows (~35.5 % / 27.8 % at parallelism 4); latency grows
//! with proposal size, with the CBC–RBC gap widening and the CBC–PRBC gap
//! narrowing (crypto dominates message count).

use wbft_bench::{banner, proposal_of_packets, row, run_component, Comp, CompInput};
use wbft_components::baseline::BaselineCbcSet;
use wbft_components::cbc::{CbcBatch, CbcSmallBatch};
use wbft_components::prbc::PrbcBatch;
use wbft_components::rbc::RbcBatch;
use wbft_components::rbc_small::RbcSmallBatch;

/// Latency of one protocol at `parallelism` active proposers, averaged
/// over three seeds to smooth CSMA/backoff luck.
fn measure(which: &str, parallelism: usize, packets: usize, seed: u64) -> f64 {
    (0..3).map(|k| measure_once(which, parallelism, packets, seed + 100 * k)).sum::<f64>() / 3.0
}

fn measure_once(which: &str, parallelism: usize, packets: usize, seed: u64) -> f64 {
    let inputs = move |i: usize| {
        CompInput::Value((i < parallelism).then(|| proposal_of_packets(packets, i)))
    };
    let result = match which {
        "RBC" => run_component(4, seed, |_, _, p| Comp::Rbc(RbcBatch::new(p)), inputs, parallelism),
        "RBC-small" => {
            run_component(4, seed, |_, _, p| Comp::RbcSmall(RbcSmallBatch::new(p)), inputs, parallelism)
        }
        "CBC" => run_component(
            4,
            seed,
            |_, c, p| Comp::Cbc(CbcBatch::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "CBC-small" => run_component(
            4,
            seed,
            |_, c, p| Comp::CbcSmall(CbcSmallBatch::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "PRBC" => run_component(
            4,
            seed,
            |_, c, p| Comp::Prbc(PrbcBatch::new(p, c.prbc_pub.clone(), c.prbc_sec.clone())),
            inputs,
            parallelism,
        ),
        "CBC-baseline" => run_component(
            4,
            seed,
            |_, c, p| Comp::BaseCbc(BaselineCbcSet::new(p, c.cbc_pub.clone(), c.cbc_sec.clone())),
            inputs,
            parallelism,
        ),
        _ => unreachable!(),
    };
    assert!(result.completed, "{which} p={parallelism} did not complete");
    result.latency.as_secs_f64()
}

fn main() {
    fig11a();
    fig11b();
    println!("\n[fig11_broadcast] OK");
}

fn fig11a() {
    banner(
        "Fig. 11a — broadcast latency (s) vs number of parallel instances",
        "4 nodes; 1-packet proposals; LoRa airtime + calibrated crypto costs",
    );
    let protos = ["RBC", "RBC-small", "CBC", "CBC-small", "PRBC"];
    let widths = [11usize, 8, 8, 8, 8];
    let mut header = vec!["protocol".to_string()];
    header.extend((1..=4).map(|p| format!("p={p}")));
    println!("{}", row(&header, &widths));
    let mut table = Vec::new();
    for proto in protos {
        let mut cells = vec![proto.to_string()];
        let mut lats = Vec::new();
        for parallelism in 1..=4 {
            let lat = measure(proto, parallelism, 1, 21 + parallelism as u64);
            lats.push(lat);
            cells.push(format!("{lat:.1}"));
        }
        println!("{}", row(&cells, &widths));
        table.push((proto, lats));
    }
    // Shape checks at parallelism 4.
    let get = |name: &str| table.iter().find(|(p, _)| *p == name).unwrap().1[3];
    assert!(get("RBC-small") < get("RBC"), "RBC-small must beat RBC at p=4");
    assert!(get("CBC-small") < get("CBC"), "CBC-small must beat CBC at p=4");
    assert!(get("RBC") < get("PRBC"), "PRBC adds the DONE phase above RBC");
    println!(
        "shape: small variants win at p=4 (paper: 35.5% / 27.8%); measured {:.0}% / {:.0}%",
        (1.0 - get("RBC-small") / get("RBC")) * 100.0,
        (1.0 - get("CBC-small") / get("CBC")) * 100.0,
    );
}

fn fig11b() {
    banner(
        "Fig. 11b — broadcast latency (s) vs proposal size (packets)",
        "4 nodes; parallelism 4",
    );
    let protos = ["RBC", "PRBC", "CBC"];
    let widths = [11usize, 8, 8, 8, 8];
    let mut header = vec!["protocol".to_string()];
    header.extend((1..=4).map(|p| format!("{p}pkt")));
    println!("{}", row(&header, &widths));
    let mut table = Vec::new();
    for proto in protos {
        let mut cells = vec![proto.to_string()];
        let mut lats = Vec::new();
        for packets in 1..=4 {
            let lat = measure(proto, 4, packets, 31 + packets as u64);
            lats.push(lat);
            cells.push(format!("{lat:.1}"));
        }
        println!("{}", row(&cells, &widths));
        table.push((proto, lats));
    }
    for (proto, lats) in &table {
        assert!(
            lats[3] > lats[0],
            "{proto}: latency must grow with proposal size ({lats:?})"
        );
    }
}
